//! # qmetrics — anomaly-detection evaluation metrics
//!
//! Implements the paper's four evaluation metrics (§V): detection rate at
//! percentile thresholds, precision, recall and F1 — plus accuracy,
//! detection-rate curves (Fig. 9), ROC-AUC, and the streaming statistics
//! Quorum's ensemble analysis needs.
//!
//! ```
//! use qmetrics::confusion::ConfusionMatrix;
//! use qmetrics::threshold::flag_top_n;
//!
//! let scores = [0.2, 9.0, 0.4, 7.0];
//! let truth = [false, true, false, true];
//! let flags = flag_top_n(&scores, 2);
//! let cm = ConfusionMatrix::from_predictions(&truth, &flags);
//! assert_eq!(cm.f1(), 1.0);
//! ```

#![warn(missing_docs)]

pub mod confusion;
pub mod curve;
pub mod stats;
pub mod threshold;

pub use confusion::ConfusionMatrix;
pub use curve::{detection_rate_curve, roc_auc, CurvePoint};
pub use threshold::{detection_rate_at, flag_top_fraction, flag_top_n, top_n_indices};
