//! Ranking curves: detection-rate curves (Fig. 9) and ROC/AUC.

use crate::threshold::top_n_indices;

/// One point of a detection-rate curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Fraction of the dataset inspected (x-axis of Fig. 9).
    pub fraction_inspected: f64,
    /// Fraction of true anomalies found so far (y-axis of Fig. 9).
    pub fraction_detected: f64,
}

/// Computes the full detection-rate curve: walking down the score ranking,
/// what share of the anomalies has been seen after inspecting the top `k`
/// samples, for every `k` from 0 to `n`.
///
/// # Panics
///
/// Panics if `scores` and `labels` lengths differ.
///
/// # Examples
///
/// ```
/// use qmetrics::curve::detection_rate_curve;
///
/// let scores = [9.0, 1.0, 8.0];
/// let labels = [true, false, true];
/// let curve = detection_rate_curve(&scores, &labels);
/// // After inspecting 2 of 3 samples, both anomalies are found.
/// assert!((curve[2].fraction_detected - 1.0).abs() < 1e-12);
/// ```
pub fn detection_rate_curve(scores: &[f64], labels: &[bool]) -> Vec<CurvePoint> {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    let n = scores.len();
    let total_anomalies = labels.iter().filter(|&&l| l).count().max(1);
    let order = top_n_indices(scores, n);
    let mut curve = Vec::with_capacity(n + 1);
    curve.push(CurvePoint {
        fraction_inspected: 0.0,
        fraction_detected: 0.0,
    });
    let mut found = 0usize;
    for (k, &idx) in order.iter().enumerate() {
        if labels[idx] {
            found += 1;
        }
        curve.push(CurvePoint {
            fraction_inspected: (k + 1) as f64 / n as f64,
            fraction_detected: found as f64 / total_anomalies as f64,
        });
    }
    curve
}

/// Samples a detection-rate curve at chosen inspection fractions (for
/// compact reporting of Fig. 9's series).
pub fn sample_curve(curve: &[CurvePoint], fractions: &[f64]) -> Vec<CurvePoint> {
    fractions
        .iter()
        .map(|&f| {
            let detected = curve
                .iter()
                .filter(|p| p.fraction_inspected <= f + 1e-12)
                .map(|p| p.fraction_detected)
                .fold(0.0, f64::max);
            CurvePoint {
                fraction_inspected: f,
                fraction_detected: detected,
            }
        })
        .collect()
}

/// Area under the detection-rate curve via trapezoids — 1.0 means every
/// anomaly outranks every normal sample; ~the anomaly rate under a random
/// ranking is the floor.
pub fn curve_auc(curve: &[CurvePoint]) -> f64 {
    curve
        .windows(2)
        .map(|w| {
            let dx = w[1].fraction_inspected - w[0].fraction_inspected;
            dx * (w[0].fraction_detected + w[1].fraction_detected) / 2.0
        })
        .sum()
}

/// ROC-AUC by the rank-sum (Mann–Whitney) formulation, with tie handling.
///
/// # Panics
///
/// Panics if lengths differ. Returns 0.5 when either class is empty.
pub fn roc_auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    let pos: Vec<f64> = scores
        .iter()
        .zip(labels)
        .filter(|(_, &l)| l)
        .map(|(&s, _)| s)
        .collect();
    let neg: Vec<f64> = scores
        .iter()
        .zip(labels)
        .filter(|(_, &l)| !l)
        .map(|(&s, _)| s)
        .collect();
    if pos.is_empty() || neg.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0;
    for &p in &pos {
        for &q in &neg {
            if p > q {
                wins += 1.0;
            } else if p == q {
                wins += 0.5;
            }
        }
    }
    wins / (pos.len() as f64 * neg.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_saturates_early() {
        let scores = [10.0, 9.0, 1.0, 0.5, 0.2];
        let labels = [true, true, false, false, false];
        let curve = detection_rate_curve(&scores, &labels);
        assert_eq!(curve.len(), 6);
        assert!((curve[2].fraction_detected - 1.0).abs() < 1e-12);
        assert!((curve_auc(&curve) - (1.0 - 0.2 - 0.1)).abs() < 0.11);
        assert!((roc_auc(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_ranking_finds_anomalies_last() {
        let scores = [0.1, 0.2, 5.0];
        let labels = [true, false, false];
        let curve = detection_rate_curve(&scores, &labels);
        assert_eq!(curve[1].fraction_detected, 0.0);
        assert_eq!(curve[2].fraction_detected, 0.0);
        assert!((curve[3].fraction_detected - 1.0).abs() < 1e-12);
        assert!(roc_auc(&scores, &labels) < 0.01);
    }

    #[test]
    fn random_ranking_auc_near_half() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        let scores: Vec<f64> = (0..2000).map(|_| rng.gen()).collect();
        let labels: Vec<bool> = (0..2000).map(|_| rng.gen_bool(0.1)).collect();
        let auc = roc_auc(&scores, &labels);
        assert!((auc - 0.5).abs() < 0.05, "auc {auc}");
    }

    #[test]
    fn ties_count_half() {
        let scores = [1.0, 1.0];
        let labels = [true, false];
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_classes_return_half() {
        assert_eq!(roc_auc(&[1.0, 2.0], &[true, true]), 0.5);
        assert_eq!(roc_auc(&[1.0, 2.0], &[false, false]), 0.5);
    }

    #[test]
    fn sample_curve_picks_running_maximum() {
        let scores = [9.0, 8.0, 1.0, 0.5];
        let labels = [true, false, true, false];
        let curve = detection_rate_curve(&scores, &labels);
        let sampled = sample_curve(&curve, &[0.25, 0.5, 1.0]);
        assert!((sampled[0].fraction_detected - 0.5).abs() < 1e-12);
        assert!((sampled[1].fraction_detected - 0.5).abs() < 1e-12);
        assert!((sampled[2].fraction_detected - 1.0).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotonic() {
        let scores = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6];
        let labels = [false, true, true, false, true, false];
        let curve = detection_rate_curve(&scores, &labels);
        for w in curve.windows(2) {
            assert!(w[1].fraction_detected >= w[0].fraction_detected);
            assert!(w[1].fraction_inspected >= w[0].fraction_inspected);
        }
    }

    #[test]
    fn no_anomalies_curve_is_flat_zero() {
        let curve = detection_rate_curve(&[1.0, 2.0], &[false, false]);
        assert!(curve.iter().all(|p| p.fraction_detected == 0.0));
    }
}
