//! Scalar statistics used by Quorum's ensemble analysis and the evaluation
//! harness.

/// Arithmetic mean. Returns 0 for empty input.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population variance (divides by `n`), matching NumPy's default used by
/// the paper's statistics pipeline. Returns 0 for empty input.
pub fn population_variance(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
pub fn population_std(values: &[f64]) -> f64 {
    population_variance(values).sqrt()
}

/// Sample variance (divides by `n−1`). Returns 0 when `n < 2`.
pub fn sample_variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64
}

/// Median by sorting a copy. Returns 0 for empty input.
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Linear-interpolated percentile, `q ∈ [0, 100]`.
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 100]`.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&q), "percentile rank in [0,100]");
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let pos = q / 100.0 * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        v[lo] + (pos - lo as f64) * (v[hi] - v[lo])
    }
}

/// The z-score of `x` against a distribution with the given mean and
/// standard deviation. Returns 0 when `std` is (numerically) zero — the
/// convention Quorum's scoring uses so degenerate buckets contribute
/// nothing.
pub fn zscore(x: f64, mean: f64, std: f64) -> f64 {
    if std <= 1e-300 {
        0.0
    } else {
        (x - mean) / std
    }
}

/// Spearman rank correlation between two score vectors (ties get average
/// ranks). Returns 0 for degenerate inputs (length < 2 or zero variance).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn spearman_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    if a.len() < 2 {
        return 0.0;
    }
    let ra = average_ranks(a);
    let rb = average_ranks(b);
    let ma = mean(&ra);
    let mb = mean(&rb);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in ra.iter().zip(&rb) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Assigns average ranks (1-based) with tie handling.
fn average_ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&i, &j| values[i].total_cmp(&values[j]));
    let mut ranks = vec![0.0; values.len()];
    let mut k = 0;
    while k < order.len() {
        let mut j = k;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[k]] {
            j += 1;
        }
        let avg = (k + j) as f64 / 2.0 + 1.0;
        for &idx in &order[k..=j] {
            ranks[idx] = avg;
        }
        k = j + 1;
    }
    ranks
}

/// Numerically stable streaming mean/variance (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use qmetrics::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 6.0] {
///     w.push(x);
/// }
/// assert_eq!(w.count(), 3);
/// assert!((w.mean() - 4.0).abs() < 1e-12);
/// assert!((w.population_variance() - 8.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Running population variance (0 when empty).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Running population standard deviation.
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn mean_and_variances() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&v) - 2.5).abs() < TOL);
        assert!((population_variance(&v) - 1.25).abs() < TOL);
        assert!((sample_variance(&v) - 5.0 / 3.0).abs() < TOL);
        assert!((population_std(&v) - 1.25f64.sqrt()).abs() < TOL);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(population_variance(&[]), 0.0);
        assert_eq!(sample_variance(&[5.0]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn median_even_and_odd() {
        assert!((median(&[3.0, 1.0, 2.0]) - 2.0).abs() < TOL);
        assert!((median(&[4.0, 1.0, 3.0, 2.0]) - 2.5).abs() < TOL);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert!((percentile(&v, 0.0) - 10.0).abs() < TOL);
        assert!((percentile(&v, 100.0) - 40.0).abs() < TOL);
        assert!((percentile(&v, 50.0) - 25.0).abs() < TOL);
        assert!((percentile(&v, 25.0) - 17.5).abs() < TOL);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        percentile(&[], 50.0);
    }

    #[test]
    fn zscore_handles_degenerate_std() {
        assert!((zscore(3.0, 1.0, 2.0) - 1.0).abs() < TOL);
        assert_eq!(zscore(3.0, 1.0, 0.0), 0.0);
        assert!(zscore(0.0, 1.0, 2.0) < 0.0);
    }

    #[test]
    fn spearman_perfect_and_inverted() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman_correlation(&a, &b) - 1.0).abs() < TOL);
        let c = [40.0, 30.0, 20.0, 10.0];
        assert!((spearman_correlation(&a, &c) + 1.0).abs() < TOL);
    }

    #[test]
    fn spearman_is_rank_based_not_linear() {
        // Monotone but nonlinear transform preserves rho = 1.
        let a = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let b: Vec<f64> = a.iter().map(|x| x.exp()).collect();
        assert!((spearman_correlation(&a, &b) - 1.0).abs() < TOL);
    }

    #[test]
    fn spearman_handles_ties_and_degenerate() {
        let a = [1.0, 1.0, 2.0];
        let b = [3.0, 3.0, 5.0];
        assert!((spearman_correlation(&a, &b) - 1.0).abs() < TOL);
        assert_eq!(spearman_correlation(&[1.0], &[2.0]), 0.0);
        assert_eq!(spearman_correlation(&[2.0, 2.0], &[1.0, 3.0]), 0.0);
    }

    #[test]
    fn average_ranks_tie_handling() {
        let r = average_ranks(&[10.0, 20.0, 10.0]);
        assert_eq!(r, vec![1.5, 3.0, 1.5]);
    }

    #[test]
    fn welford_matches_batch() {
        let v: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut w = Welford::new();
        for &x in &v {
            w.push(x);
        }
        assert!((w.mean() - mean(&v)).abs() < 1e-10);
        assert!((w.population_variance() - population_variance(&v)).abs() < 1e-10);
    }

    #[test]
    fn welford_merge_matches_sequential() {
        let v: Vec<f64> = (0..57).map(|i| i as f64 * 0.37 - 4.0).collect();
        let mut whole = Welford::new();
        for &x in &v {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &v[..20] {
            a.push(x);
        }
        for &x in &v[20..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.population_variance() - whole.population_variance()).abs() < 1e-10);
        // Merging an empty accumulator is a no-op.
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);
    }
}
