//! The random autoencoder ansatz (paper §IV-D, Fig. 5).
//!
//! Each layer applies RX(θ) to every qubit, RZ(θ) to every qubit, then a
//! linear CX entangling chain. All angles are drawn i.i.d. from
//! `U(0, 2π)` — **never trained**. The decoder is the exact inverse
//! (reversed gate order, negated angles), so without the partial reset the
//! encoder–decoder pair would be the identity and the SWAP test would read
//! zero deviation for every sample.

use qsim::circuit::Circuit;
use rand::Rng;
use std::f64::consts::PI;

/// Randomly drawn ansatz parameters for one ensemble group.
#[derive(Debug, Clone, PartialEq)]
pub struct AnsatzParams {
    num_qubits: usize,
    /// `layers[l] = (rx_angles, rz_angles)`, each of length `num_qubits`.
    layers: Vec<(Vec<f64>, Vec<f64>)>,
}

impl AnsatzParams {
    /// Draws `num_layers` layers of uniform random angles for
    /// `num_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits == 0` or `num_layers == 0`.
    pub fn random<R: Rng + ?Sized>(num_qubits: usize, num_layers: usize, rng: &mut R) -> Self {
        assert!(num_qubits > 0, "ansatz needs at least one qubit");
        assert!(num_layers > 0, "ansatz needs at least one layer");
        let layers = (0..num_layers)
            .map(|_| {
                let rx = (0..num_qubits)
                    .map(|_| rng.gen_range(0.0..2.0 * PI))
                    .collect();
                let rz = (0..num_qubits)
                    .map(|_| rng.gen_range(0.0..2.0 * PI))
                    .collect();
                (rx, rz)
            })
            .collect();
        AnsatzParams { num_qubits, layers }
    }

    /// Builds params from explicit angles (tests/ablations).
    ///
    /// # Panics
    ///
    /// Panics if any layer's angle vectors have the wrong length.
    pub fn from_layers(num_qubits: usize, layers: Vec<(Vec<f64>, Vec<f64>)>) -> Self {
        for (rx, rz) in &layers {
            assert_eq!(rx.len(), num_qubits, "rx angle count");
            assert_eq!(rz.len(), num_qubits, "rz angle count");
        }
        AnsatzParams { num_qubits, layers }
    }

    /// Qubit count the ansatz targets.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The raw per-layer `(rx_angles, rz_angles)` pairs, in application
    /// order. Exposed so a generated detector can be frozen to an artifact
    /// and reassembled bit-identically via [`AnsatzParams::from_layers`].
    pub fn layers(&self) -> &[(Vec<f64>, Vec<f64>)] {
        &self.layers
    }

    /// The encoder circuit `E(θ)` over qubits `0..num_qubits`.
    pub fn encoder(&self) -> Circuit {
        let mut circ = Circuit::new(self.num_qubits);
        for (rx, rz) in &self.layers {
            for (q, &theta) in rx.iter().enumerate() {
                circ.rx(theta, q);
            }
            for (q, &theta) in rz.iter().enumerate() {
                circ.rz(theta, q);
            }
            for q in 0..self.num_qubits.saturating_sub(1) {
                circ.cx(q, q + 1);
            }
        }
        circ
    }

    /// The decoder circuit `D(θ) = E(θ)†`: reversed order, negated angles.
    pub fn decoder(&self) -> Circuit {
        self.encoder().inverse().expect("encoder is purely unitary")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::circuit::Operation;
    use qsim::gate::Gate;
    use qsim::statevector::Statevector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn apply(circ: &Circuit, sv: &mut Statevector) {
        for instr in circ.instructions() {
            if let Operation::Gate(g) = &instr.op {
                sv.apply_gate(*g, &instr.qubits).unwrap();
            }
        }
    }

    #[test]
    fn encoder_structure_matches_fig5() {
        let mut rng = StdRng::seed_from_u64(2);
        let params = AnsatzParams::random(3, 2, &mut rng);
        let enc = params.encoder();
        // Per layer: 3 RX + 3 RZ + 2 CX = 8 gates; 2 layers = 16.
        assert_eq!(enc.len(), 16);
        let ops = enc.count_ops();
        assert_eq!(ops.iter().find(|(n, _)| n == "rx").unwrap().1, 6);
        assert_eq!(ops.iter().find(|(n, _)| n == "rz").unwrap().1, 6);
        assert_eq!(ops.iter().find(|(n, _)| n == "cx").unwrap().1, 4);
    }

    #[test]
    fn decoder_inverts_encoder_exactly() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5 {
            let params = AnsatzParams::random(3, 2, &mut rng);
            let mut sv = Statevector::new(3);
            // Random-ish initial state.
            sv.apply_gate(Gate::RY(0.9), &[0]).unwrap();
            sv.apply_gate(Gate::RY(1.7), &[1]).unwrap();
            sv.apply_gate(Gate::CX, &[0, 2]).unwrap();
            let original = sv.clone();
            apply(&params.encoder(), &mut sv);
            apply(&params.decoder(), &mut sv);
            assert!(
                (sv.fidelity(&original).unwrap() - 1.0).abs() < 1e-10,
                "decoder failed to invert encoder"
            );
        }
    }

    #[test]
    fn decoder_negates_angles() {
        let params = AnsatzParams::from_layers(2, vec![(vec![0.5, 0.7], vec![1.1, 1.3])]);
        let dec = params.decoder();
        let angles: Vec<f64> = dec
            .instructions()
            .iter()
            .filter_map(|i| match &i.op {
                Operation::Gate(g) => g.angle(),
                _ => None,
            })
            .collect();
        assert!(angles.iter().all(|&a| a < 0.0), "angles {angles:?}");
    }

    #[test]
    fn encoder_transforms_nontrivially() {
        let mut rng = StdRng::seed_from_u64(11);
        let params = AnsatzParams::random(3, 2, &mut rng);
        let mut sv = Statevector::new(3);
        let original = sv.clone();
        apply(&params.encoder(), &mut sv);
        assert!(
            sv.fidelity(&original).unwrap() < 0.99,
            "encoder is ~identity"
        );
    }

    #[test]
    fn different_seeds_give_different_circuits() {
        let a = AnsatzParams::random(3, 2, &mut StdRng::seed_from_u64(1));
        let b = AnsatzParams::random(3, 2, &mut StdRng::seed_from_u64(2));
        assert_ne!(a, b);
    }

    #[test]
    fn single_qubit_ansatz_has_no_cx() {
        let params = AnsatzParams::random(1, 2, &mut StdRng::seed_from_u64(1));
        let enc = params.encoder();
        assert_eq!(enc.count_multi_qubit_gates(), 0);
        assert_eq!(enc.len(), 4); // rx + rz per layer
    }

    #[test]
    fn angles_are_in_range() {
        let params = AnsatzParams::random(4, 3, &mut StdRng::seed_from_u64(5));
        let enc = params.encoder();
        for instr in enc.instructions() {
            if let Operation::Gate(g) = &instr.op {
                if let Some(a) = g.angle() {
                    assert!((0.0..2.0 * PI).contains(&a));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn rejects_zero_layers() {
        AnsatzParams::random(3, 0, &mut StdRng::seed_from_u64(0));
    }
}
