//! The top-level detector: Quorum's public entry point.

use crate::bucket::BucketPlan;
use crate::config::QuorumConfig;
use crate::ensemble::EnsembleGroup;
use crate::error::QuorumError;
use crate::score::ScoreReport;
use qdata::preprocess::RangeNormalizer;
use qdata::Dataset;
use qsim::parallel::map_indexed;

/// Zero-training unsupervised quantum anomaly detector.
///
/// There is deliberately **no `fit` method**: Quorum never optimises
/// parameters. [`QuorumDetector::score`] runs the whole pipeline —
/// normalisation, bucketing, feature selection, random quantum
/// autoencoding, SWAP tests and ensemble statistics — in one call.
///
/// # Examples
///
/// ```
/// use quorum_core::config::QuorumConfig;
/// use quorum_core::detector::QuorumDetector;
/// use qdata::Dataset;
///
/// // Ten tight samples plus one outlier.
/// let mut rows: Vec<Vec<f64>> = (0..10)
///     .map(|i| vec![1.0 + 0.01 * i as f64, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
///     .collect();
/// rows.push(vec![9.0, 0.1, 8.5, 0.2, 9.5, 0.3, 7.7]);
/// let ds = Dataset::from_rows("demo", rows, None).unwrap();
///
/// let detector = QuorumDetector::new(
///     QuorumConfig::default()
///         .with_ensemble_groups(12)
///         .with_anomaly_rate_estimate(0.1),
/// ).unwrap();
/// let report = detector.score(&ds).unwrap();
/// // The outlier (index 10) gets the top anomaly score.
/// assert_eq!(report.ranking()[0], 10);
/// ```
#[derive(Debug, Clone)]
pub struct QuorumDetector {
    config: QuorumConfig,
}

impl QuorumDetector {
    /// Creates a detector after validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidConfig`] for inconsistent settings.
    pub fn new(config: QuorumConfig) -> Result<Self, QuorumError> {
        config.validate()?;
        Ok(QuorumDetector { config })
    }

    /// The active configuration.
    pub fn config(&self) -> &QuorumConfig {
        &self.config
    }

    /// Scores every sample of `data`. Labels, if attached, are **stripped
    /// before any processing** — they never influence the scores — and the
    /// bucket-sizing anomaly-rate prior comes from the configuration alone.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidData`] for an unusable dataset and
    /// propagates simulation failures.
    pub fn score(&self, data: &Dataset) -> Result<ScoreReport, QuorumError> {
        let all: Vec<usize> = (0..self.config.ensemble_groups).collect();
        let totals = self.score_group_subset(data, &all)?;
        Ok(ScoreReport::new(
            data.name(),
            totals,
            self.config.ensemble_groups,
            self.config.effective_compression_levels(),
        ))
    }

    /// The additive partial score contributed by a **subset** of the
    /// ensemble groups — the group-sharding seam. Quorum's total score is
    /// a plain sum of independent per-group contributions, so disjoint
    /// subsets can run on different workers (threads, processes or
    /// machines) and be merged afterwards; summing the per-group partials
    /// in ascending group-index order reproduces [`QuorumDetector::score`]
    /// bit for bit.
    ///
    /// `group_indices` may arrive in any order; evaluation and
    /// accumulation happen in ascending index order so a subset's partial
    /// is a pure function of its *set* of groups.
    ///
    /// # Errors
    ///
    /// [`QuorumError::InvalidConfig`] for out-of-range or duplicate group
    /// indices; otherwise the same conditions as
    /// [`QuorumDetector::score`].
    pub fn score_group_subset(
        &self,
        data: &Dataset,
        group_indices: &[usize],
    ) -> Result<Vec<f64>, QuorumError> {
        if data.num_samples() < 4 {
            return Err(QuorumError::InvalidData(
                "need at least 4 samples to form deviation statistics".into(),
            ));
        }
        if data.num_features() == 0 {
            return Err(QuorumError::InvalidData("dataset has no features".into()));
        }
        let mut subset = group_indices.to_vec();
        subset.sort_unstable();
        if subset.windows(2).any(|w| w[0] == w[1]) {
            return Err(QuorumError::InvalidConfig(
                "group subset contains a duplicate index".into(),
            ));
        }
        if subset
            .last()
            .is_some_and(|&g| g >= self.config.ensemble_groups)
        {
            return Err(QuorumError::InvalidConfig(format!(
                "group subset indexes beyond the {} configured groups",
                self.config.ensemble_groups
            )));
        }
        let normalized = normalize_for_scoring(&self.config, data);

        let rate = self.config.anomaly_rate_estimate.unwrap_or(0.05);
        let plan = BucketPlan::from_target(
            normalized.num_samples(),
            rate,
            self.config.bucket_probability,
        );

        let threads = self.config.effective_threads();

        // Resolve the scoring engine once; every group shares it. Under
        // `Auto` this is the batched analytic engine for noiseless runs:
        // each group scores its whole batch per compression level through
        // one GEMM against its cached fused encoder.
        let engine = crate::engine::resolve(&self.config)?;
        let config = &self.config;
        let normalized_ref = &normalized;
        let subset_ref = &subset;
        let partials: Vec<Result<Vec<f64>, QuorumError>> =
            map_indexed(subset.len(), threads, move |i| {
                let group = EnsembleGroup::generate(
                    subset_ref[i],
                    config,
                    normalized_ref.num_features(),
                    &plan,
                );
                group.run_with(engine, normalized_ref, config)
            });

        let mut totals = vec![0.0; normalized.num_samples()];
        for partial in partials {
            let partial = partial?;
            for (t, p) in totals.iter_mut().zip(partial) {
                *t += p;
            }
        }
        Ok(totals)
    }
}

/// The exact feature preprocessing [`QuorumDetector::score`] applies
/// before any engine sees the data: labels stripped (the unsupervised
/// guarantee), then the configured normalisation — for the paper-faithful
/// `RangeMax` arm with negatives folded to absolute values, since the
/// range normaliser maps into `[-1/M, 1/M]` and amplitude embedding needs
/// non-negative reals. Public so engine-level benches and tests can feed
/// engines the same distribution the production pipeline does.
pub fn normalize_for_scoring(config: &QuorumConfig, data: &Dataset) -> Dataset {
    let unlabeled = data.strip_labels();
    match config.normalization {
        crate::config::Normalization::RangeMax => {
            absolute_features(&RangeNormalizer::fit_transform(&unlabeled))
        }
        crate::config::Normalization::MinMax => qdata::MinMaxNormalizer::fit_transform(&unlabeled),
    }
}

/// Replaces every feature with its absolute value so amplitude embedding
/// (which needs non-negative reals) is well-defined; the paper's features
/// are non-negative after its normalisation, and |·| preserves "distance
/// from typical" for signed data. Public so a frozen detector can apply
/// the identical fold to streamed samples.
pub fn absolute_features(ds: &Dataset) -> Dataset {
    let rows = ds
        .rows()
        .iter()
        .map(|r| r.iter().map(|v| v.abs()).collect())
        .collect();
    Dataset::from_rows(ds.name(), rows, ds.labels().map(<[bool]>::to_vec))
        .expect("shape preserved")
        .with_feature_names(ds.feature_names().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecutionMode;

    /// 20 clustered samples + 2 planted outliers at indices 20, 21.
    fn planted() -> Dataset {
        let mut rows: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let t = i as f64 * 0.05;
                vec![
                    5.0 + t,
                    4.0 - t * 0.5,
                    6.0 + t * 0.3,
                    5.5,
                    4.5 + t,
                    5.0,
                    6.0 - t,
                    5.2,
                ]
            })
            .collect();
        rows.push(vec![0.2, 9.5, 0.1, 9.8, 0.3, 9.1, 0.2, 9.9]);
        rows.push(vec![9.9, 0.2, 9.7, 0.1, 9.5, 0.4, 9.8, 0.3]);
        let mut labels = vec![false; 20];
        labels.extend([true, true]);
        Dataset::from_rows("planted", rows, Some(labels)).unwrap()
    }

    fn fast_config() -> QuorumConfig {
        QuorumConfig::default()
            .with_ensemble_groups(10)
            .with_anomaly_rate_estimate(0.1)
            .with_threads(2)
            .with_seed(3)
    }

    #[test]
    fn detects_planted_outliers() {
        let ds = planted();
        let detector = QuorumDetector::new(fast_config()).unwrap();
        let report = detector.score(&ds).unwrap();
        let ranking = report.ranking();
        let top2: Vec<usize> = ranking[..2].to_vec();
        assert!(
            top2.contains(&20) && top2.contains(&21),
            "outliers not at top: {top2:?}"
        );
        let cm = report.evaluate_at_anomaly_count(ds.labels().unwrap());
        assert_eq!(cm.f1(), 1.0);
    }

    #[test]
    fn scoring_is_deterministic() {
        let ds = planted();
        let detector = QuorumDetector::new(fast_config()).unwrap();
        let a = detector.score(&ds).unwrap();
        let b = detector.score(&ds).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn seed_changes_scores_but_not_conclusions() {
        let ds = planted();
        let a = QuorumDetector::new(fast_config().with_seed(1))
            .unwrap()
            .score(&ds)
            .unwrap();
        let b = QuorumDetector::new(fast_config().with_seed(2))
            .unwrap()
            .score(&ds)
            .unwrap();
        assert_ne!(a.scores(), b.scores());
        // Both seeds still rank the planted outliers on top.
        assert!(a.ranking()[..2].contains(&20));
        assert!(b.ranking()[..2].contains(&20));
    }

    #[test]
    fn labels_do_not_influence_scores() {
        let ds = planted();
        let detector = QuorumDetector::new(fast_config()).unwrap();
        let with_labels = detector.score(&ds).unwrap();
        let without_labels = detector.score(&ds.strip_labels()).unwrap();
        assert_eq!(with_labels.scores(), without_labels.scores());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let ds = planted();
        let a = QuorumDetector::new(fast_config().with_threads(1))
            .unwrap()
            .score(&ds)
            .unwrap();
        let b = QuorumDetector::new(fast_config().with_threads(4))
            .unwrap()
            .score(&ds)
            .unwrap();
        assert_eq!(a.scores(), b.scores());
    }

    #[test]
    fn sampled_execution_still_finds_outliers() {
        let ds = planted();
        let detector = QuorumDetector::new(
            fast_config().with_execution(ExecutionMode::Sampled { shots: 4096 }),
        )
        .unwrap();
        let report = detector.score(&ds).unwrap();
        let top2 = &report.ranking()[..2];
        assert!(top2.contains(&20) && top2.contains(&21), "top2 {top2:?}");
    }

    #[test]
    fn group_subsets_are_additive_and_order_free() {
        let ds = planted();
        let detector = QuorumDetector::new(fast_config()).unwrap();
        let full = detector.score(&ds).unwrap();
        // Any disjoint partition, merged per group in ascending index
        // order, reproduces the full run bit for bit — the property the
        // sharded serving runtime leans on.
        let partitions: [(Vec<usize>, Vec<usize>); 2] = [
            ((0..5).collect(), (5..10).collect()),
            (vec![0, 2, 4, 6, 8], vec![1, 3, 5, 7, 9]),
        ];
        for (left, right) in partitions {
            let mut per_group: Vec<(usize, Vec<f64>)> = Vec::new();
            for subset in [&left, &right] {
                for &g in subset {
                    per_group.push((g, detector.score_group_subset(&ds, &[g]).unwrap()));
                }
            }
            per_group.sort_by_key(|(g, _)| *g);
            let mut merged = vec![0.0; ds.num_samples()];
            for (_, partial) in per_group {
                for (t, p) in merged.iter_mut().zip(partial) {
                    *t += p;
                }
            }
            assert_eq!(merged, full.scores(), "partition {left:?} | {right:?}");
        }
        // The subset's own accumulation is order-free: indices may arrive
        // shuffled without changing a single bit.
        let shuffled = detector.score_group_subset(&ds, &[7, 1, 4, 0]).unwrap();
        let sorted = detector.score_group_subset(&ds, &[0, 1, 4, 7]).unwrap();
        assert_eq!(shuffled, sorted);
    }

    #[test]
    fn group_subset_rejects_bad_indices() {
        let ds = planted();
        let detector = QuorumDetector::new(fast_config()).unwrap();
        assert!(matches!(
            detector.score_group_subset(&ds, &[10]),
            Err(QuorumError::InvalidConfig(_))
        ));
        assert!(matches!(
            detector.score_group_subset(&ds, &[1, 1]),
            Err(QuorumError::InvalidConfig(_))
        ));
        let empty = detector.score_group_subset(&ds, &[]).unwrap();
        assert!(empty.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn rejects_tiny_and_empty_datasets() {
        let detector = QuorumDetector::new(fast_config()).unwrap();
        let tiny = Dataset::from_rows("t", vec![vec![1.0]; 3], None).unwrap();
        assert!(matches!(
            detector.score(&tiny),
            Err(QuorumError::InvalidData(_))
        ));
    }

    #[test]
    fn rejects_invalid_config() {
        assert!(QuorumDetector::new(QuorumConfig::default().with_ensemble_groups(0)).is_err());
    }

    #[test]
    fn handles_signed_features() {
        // Negative raw values must not break embedding.
        let mut rows: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![-5.0 + 0.1 * i as f64, 3.0, -2.0, 1.0])
            .collect();
        rows.push(vec![5.0, -3.0, 2.0, -1.0]);
        let ds = Dataset::from_rows("signed", rows, None).unwrap();
        let detector = QuorumDetector::new(fast_config()).unwrap();
        let report = detector.score(&ds).unwrap();
        assert!(report.scores().iter().all(|s| s.is_finite()));
    }
}
