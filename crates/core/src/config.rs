//! Quorum configuration.

use crate::error::QuorumError;
use qsim::NoiseModel;

/// How SWAP-test probabilities are obtained.
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub enum ExecutionMode {
    /// Exact probabilities from the branching statevector backend — the
    /// infinite-shot limit. Fastest and noise-free; the default.
    #[default]
    Exact,
    /// Shot-sampled probabilities (the paper uses 4,096 shots per circuit).
    Sampled {
        /// Shots per circuit.
        shots: u64,
    },
    /// Density-matrix simulation with a hardware noise model; when `shots`
    /// is `Some`, measurement statistics are additionally shot-sampled.
    Noisy {
        /// The noise model (e.g. [`NoiseModel::brisbane`]).
        noise: NoiseModel,
        /// Optional shot sampling on top of the noisy probabilities.
        shots: Option<u64>,
    },
}

/// Below this register width, `Auto` under Noisy execution picks the
/// dense [`EngineKind::Density`] engine; at or above it, the structured
/// [`EngineKind::DensityStructured`] engine.
///
/// The crossover follows the cost model: the dense path spends
/// `O(16^n)` per (group, level) building and applying one fused
/// superoperator, while the structured path walks ~hundreds of local
/// channel ops at `O(4^n)` each — the structured constant is paid off
/// once `4^n` outgrows the program length, which happens at `n = 5`
/// (measured ≈3× there, growing ~4× per extra qubit; see
/// `benches/engine_comparison.rs`).
pub const STRUCTURED_AUTO_MIN_QUBITS: usize = 5;

/// Which scoring engine evaluates the per-sample deviations.
///
/// See [`crate::engine`] for the implementations. `Auto` picks the
/// batched analytic engine whenever the execution mode allows it (Exact
/// and Sampled) and an analytic density engine for Noisy runs, which
/// need mixed-state evolution — the dense one at the paper's widths,
/// the structured one from [`STRUCTURED_AUTO_MIN_QUBITS`] data qubits
/// up. The per-sample `Analytic` and paper-literal `Circuit` engines
/// stay selectable as cross-check oracles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum EngineKind {
    /// Batched analytic for Exact/Sampled execution; for Noisy, the
    /// dense density engine below [`STRUCTURED_AUTO_MIN_QUBITS`] data
    /// qubits and the structured density engine at or above it.
    /// Default.
    #[default]
    Auto,
    /// Force the batched analytic engine
    /// ([`crate::engine::BatchedAnalyticEngine`]): whole-group GEMM
    /// scoring with the per-group fused-unitary cache. Invalid with Noisy
    /// execution.
    Batched,
    /// Force the per-sample analytic reduced-register engine
    /// ([`crate::engine::AnalyticEngine`]) — the batched engine's
    /// one-matvec-per-sample reference. Invalid with Noisy execution.
    Analytic,
    /// Force the batched analytic density engine
    /// ([`crate::engine::DensityEngine`]): whole-group `vec(ρ)` scoring —
    /// all samples packed into one `4^n × S` matrix and pushed through the
    /// per-group fused noisy superoperators and the cached SWAP-test
    /// readout functional as blocked GEMMs. Requires Noisy execution.
    /// Rejects registers wider than 6 data qubits — the fused `16^n`
    /// objects hit the mixed-state simulator's memory budget there.
    Density,
    /// Force the structured density engine
    /// ([`crate::engine::StructuredDensityEngine`]): the same lockstep
    /// `4^n × S` panel preparation, but each level applied as a cached
    /// per-gate *channel program* and the readout folded into a bond-4
    /// matrix-product sweep — no `16^n` object is ever materialised, so
    /// wide registers (`n ≥ 5`, up to the configuration cap) stay
    /// tractable. Requires Noisy execution. Matches the dense engine to
    /// ≤ 1e-9 where both run.
    DensityStructured,
    /// Force the per-sample density engine
    /// ([`crate::engine::SampleDensityEngine`]) — the batched density
    /// engine's one-matvec-per-sample reference, the mixed-state analogue
    /// of [`EngineKind::Analytic`]. Requires Noisy execution.
    DensitySample,
    /// Force the gate-level circuit engine
    /// ([`crate::engine::CircuitEngine`]) — the paper-literal Fig. 2
    /// simulation, kept as a cross-check oracle (the only other engine
    /// able to run noise models).
    Circuit,
}

/// Which feature normalisation feeds the amplitude embedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Normalization {
    /// The paper's §IV-A formula: `raw / (max · M)`. Faithful default.
    #[default]
    RangeMax,
    /// Min–max rescaling `(raw − min) / ((max − min) · M)` — an extension
    /// that restores contrast for offset-heavy features (see the
    /// `ablation_normalization` experiment).
    MinMax,
}

/// Full configuration for a [`crate::detector::QuorumDetector`].
///
/// Construct with [`QuorumConfig::default`] and override via the `with_*`
/// methods:
///
/// ```
/// use quorum_core::config::QuorumConfig;
///
/// let config = QuorumConfig::default()
///     .with_ensemble_groups(200)
///     .with_bucket_probability(0.95)
///     .with_seed(7);
/// assert_eq!(config.ensemble_groups, 200);
/// config.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuorumConfig {
    /// Qubits per data register; circuits use `2n + 1` qubits total. The
    /// paper's experiments use 3 (7-qubit circuits).
    pub data_qubits: usize,
    /// Number of independent ensemble groups (the paper runs 1,000; shapes
    /// stabilise far earlier, see EXPERIMENTS.md).
    pub ensemble_groups: usize,
    /// Layers in the random encoder ansatz (Fig. 5 uses 2).
    pub ansatz_layers: usize,
    /// Compression levels to run per group, each given as the number of
    /// qubits reset in the bottleneck. Empty means "all levels"
    /// (`1..=data_qubits-1`), matching §IV-E.
    pub compression_levels: Vec<usize>,
    /// Target probability that a bucket contains at least one anomaly
    /// (Table I's rightmost column).
    pub bucket_probability: f64,
    /// Estimated anomaly rate used for bucket sizing. Quorum is
    /// unsupervised: this is a prior, not a label. When `None`, the
    /// detector falls back to 5%.
    pub anomaly_rate_estimate: Option<f64>,
    /// Execution mode (exact, shot-sampled, or noisy).
    pub execution: ExecutionMode,
    /// Scoring engine selection (see [`EngineKind`]).
    pub engine: EngineKind,
    /// Feature normalisation strategy (paper-faithful by default).
    pub normalization: Normalization,
    /// Master RNG seed; every ensemble group derives its own stream.
    pub seed: u64,
    /// Worker threads for the embarrassingly parallel ensemble loop.
    /// 0 means "use all available cores".
    pub threads: usize,
}

impl Default for QuorumConfig {
    fn default() -> Self {
        QuorumConfig {
            data_qubits: 3,
            ensemble_groups: 100,
            ansatz_layers: 2,
            compression_levels: Vec::new(),
            bucket_probability: 0.75,
            anomaly_rate_estimate: None,
            execution: ExecutionMode::Exact,
            engine: EngineKind::Auto,
            normalization: Normalization::RangeMax,
            seed: 0xC0FFEE,
            threads: 0,
        }
    }
}

impl QuorumConfig {
    /// Sets the number of data qubits.
    pub fn with_data_qubits(mut self, n: usize) -> Self {
        self.data_qubits = n;
        self
    }

    /// Sets the ensemble-group count.
    pub fn with_ensemble_groups(mut self, n: usize) -> Self {
        self.ensemble_groups = n;
        self
    }

    /// Sets the number of ansatz layers.
    pub fn with_ansatz_layers(mut self, n: usize) -> Self {
        self.ansatz_layers = n;
        self
    }

    /// Restricts the compression levels (numbers of reset qubits).
    pub fn with_compression_levels(mut self, levels: Vec<usize>) -> Self {
        self.compression_levels = levels;
        self
    }

    /// Sets the bucket anomaly-probability target.
    pub fn with_bucket_probability(mut self, p: f64) -> Self {
        self.bucket_probability = p;
        self
    }

    /// Sets the anomaly-rate prior for bucket sizing.
    pub fn with_anomaly_rate_estimate(mut self, r: f64) -> Self {
        self.anomaly_rate_estimate = Some(r);
        self
    }

    /// Sets the execution mode.
    pub fn with_execution(mut self, mode: ExecutionMode) -> Self {
        self.execution = mode;
        self
    }

    /// Sets the scoring-engine selection.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// The engine that will actually run, with `Auto` resolved against the
    /// execution mode.
    pub fn effective_engine(&self) -> EngineKind {
        match self.engine {
            EngineKind::Auto => match self.execution {
                ExecutionMode::Noisy { .. } => {
                    if self.data_qubits >= STRUCTURED_AUTO_MIN_QUBITS {
                        EngineKind::DensityStructured
                    } else {
                        EngineKind::Density
                    }
                }
                _ => EngineKind::Batched,
            },
            kind => kind,
        }
    }

    /// Sets the normalisation strategy.
    pub fn with_normalization(mut self, normalization: Normalization) -> Self {
        self.normalization = normalization;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count (0 = all cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The worker-thread count that will actually run, with 0 resolved to
    /// the machine's available parallelism. The single source of truth
    /// for every fan-out site (detector, analysis, engine kernels).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        }
    }

    /// The number of features embedded per circuit: `2^n − 1`, leaving one
    /// amplitude for the overflow state (§IV-C).
    pub fn features_per_circuit(&self) -> usize {
        (1 << self.data_qubits) - 1
    }

    /// The compression levels that will actually run: the configured list,
    /// or `1..=n-1` when empty.
    pub fn effective_compression_levels(&self) -> Vec<usize> {
        if self.compression_levels.is_empty() {
            (1..self.data_qubits).collect()
        } else {
            self.compression_levels.clone()
        }
    }

    /// Total circuit width: two data registers plus the SWAP-test ancilla.
    pub fn total_qubits(&self) -> usize {
        2 * self.data_qubits + 1
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidConfig`] with an explanation.
    pub fn validate(&self) -> Result<(), QuorumError> {
        if self.data_qubits < 2 {
            return Err(QuorumError::InvalidConfig(
                "at least 2 data qubits are required (compression needs a qubit to reset and one to keep)".into(),
            ));
        }
        if self.data_qubits > 10 {
            return Err(QuorumError::InvalidConfig(
                "more than 10 data qubits would exceed simulator limits".into(),
            ));
        }
        if self.ensemble_groups == 0 {
            return Err(QuorumError::InvalidConfig(
                "at least one ensemble group is required".into(),
            ));
        }
        if self.ansatz_layers == 0 {
            return Err(QuorumError::InvalidConfig(
                "at least one ansatz layer is required".into(),
            ));
        }
        if !(0.0 < self.bucket_probability && self.bucket_probability < 1.0) {
            return Err(QuorumError::InvalidConfig(
                "bucket probability must lie strictly between 0 and 1".into(),
            ));
        }
        if let Some(r) = self.anomaly_rate_estimate {
            if !(0.0 < r && r < 1.0) {
                return Err(QuorumError::InvalidConfig(
                    "anomaly rate estimate must lie strictly between 0 and 1".into(),
                ));
            }
        }
        for &l in &self.compression_levels {
            if l == 0 || l >= self.data_qubits {
                return Err(QuorumError::InvalidConfig(format!(
                    "compression level {l} must reset between 1 and {} qubits",
                    self.data_qubits - 1
                )));
            }
        }
        match &self.execution {
            ExecutionMode::Sampled { shots } if *shots == 0 => {
                return Err(QuorumError::InvalidConfig("shots must be positive".into()))
            }
            ExecutionMode::Noisy { shots: Some(0), .. } => {
                return Err(QuorumError::InvalidConfig("shots must be positive".into()))
            }
            _ => {}
        }
        // Engine resolution enforces engine/execution compatibility
        // (e.g. a forced analytic engine under noisy execution).
        crate::engine::resolve(self)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper() {
        let c = QuorumConfig::default();
        c.validate().unwrap();
        assert_eq!(c.data_qubits, 3);
        assert_eq!(c.total_qubits(), 7); // the paper's 7-qubit circuits
        assert_eq!(c.features_per_circuit(), 7); // m = 2^n − 1
        assert_eq!(c.effective_compression_levels(), vec![1, 2]);
    }

    #[test]
    fn builder_chains() {
        let c = QuorumConfig::default()
            .with_data_qubits(4)
            .with_ensemble_groups(5)
            .with_ansatz_layers(3)
            .with_compression_levels(vec![2])
            .with_bucket_probability(0.6)
            .with_anomaly_rate_estimate(0.1)
            .with_seed(99)
            .with_threads(2);
        c.validate().unwrap();
        assert_eq!(c.features_per_circuit(), 15);
        assert_eq!(c.effective_compression_levels(), vec![2]);
        assert_eq!(c.total_qubits(), 9);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(QuorumConfig::default()
            .with_data_qubits(1)
            .validate()
            .is_err());
        assert!(QuorumConfig::default()
            .with_data_qubits(11)
            .validate()
            .is_err());
        assert!(QuorumConfig::default()
            .with_ensemble_groups(0)
            .validate()
            .is_err());
        assert!(QuorumConfig::default()
            .with_ansatz_layers(0)
            .validate()
            .is_err());
        assert!(QuorumConfig::default()
            .with_bucket_probability(1.0)
            .validate()
            .is_err());
        assert!(QuorumConfig::default()
            .with_bucket_probability(0.0)
            .validate()
            .is_err());
        assert!(QuorumConfig::default()
            .with_anomaly_rate_estimate(0.0)
            .validate()
            .is_err());
        assert!(QuorumConfig::default()
            .with_compression_levels(vec![0])
            .validate()
            .is_err());
        assert!(QuorumConfig::default()
            .with_compression_levels(vec![3])
            .validate()
            .is_err());
        assert!(QuorumConfig::default()
            .with_execution(ExecutionMode::Sampled { shots: 0 })
            .validate()
            .is_err());
    }

    #[test]
    fn auto_engine_resolves_by_execution_mode() {
        use qsim::NoiseModel;
        let c = QuorumConfig::default();
        assert_eq!(c.engine, EngineKind::Auto);
        assert_eq!(c.effective_engine(), EngineKind::Batched);
        let sampled = c
            .clone()
            .with_execution(ExecutionMode::Sampled { shots: 128 });
        assert_eq!(sampled.effective_engine(), EngineKind::Batched);
        // Noisy runs resolve to the analytic density engine, for every
        // shots setting and noise model.
        for shots in [None, Some(4096)] {
            for noise in [NoiseModel::brisbane(), NoiseModel::ideal()] {
                let noisy = c
                    .clone()
                    .with_execution(ExecutionMode::Noisy { noise, shots });
                assert_eq!(noisy.effective_engine(), EngineKind::Density);
                noisy.validate().unwrap();
            }
        }
        let forced = c.clone().with_engine(EngineKind::Circuit);
        assert_eq!(forced.effective_engine(), EngineKind::Circuit);
        let forced = c.with_engine(EngineKind::Analytic);
        assert_eq!(forced.effective_engine(), EngineKind::Analytic);
    }

    #[test]
    fn analytic_engines_reject_noisy_execution() {
        use qsim::NoiseModel;
        for kind in [EngineKind::Analytic, EngineKind::Batched] {
            let bad =
                QuorumConfig::default()
                    .with_engine(kind)
                    .with_execution(ExecutionMode::Noisy {
                        noise: NoiseModel::brisbane(),
                        shots: None,
                    });
            assert!(bad.validate().is_err(), "{kind:?} must reject Noisy");
        }
        // Auto silently resolves to the density engine instead.
        let ok = QuorumConfig::default().with_execution(ExecutionMode::Noisy {
            noise: NoiseModel::brisbane(),
            shots: None,
        });
        ok.validate().unwrap();
    }

    #[test]
    fn density_engine_requires_noisy_execution() {
        use qsim::NoiseModel;
        let forced = QuorumConfig::default().with_engine(EngineKind::Density);
        assert!(forced.validate().is_err(), "Density must reject Exact");
        let sampled = QuorumConfig::default()
            .with_engine(EngineKind::Density)
            .with_execution(ExecutionMode::Sampled { shots: 512 });
        assert!(sampled.validate().is_err(), "Density must reject Sampled");
        let ok = QuorumConfig::default()
            .with_engine(EngineKind::Density)
            .with_execution(ExecutionMode::Noisy {
                noise: NoiseModel::brisbane(),
                shots: Some(1024),
            });
        ok.validate().unwrap();
        // The circuit oracle still accepts Noisy execution when forced.
        let oracle = QuorumConfig::default()
            .with_engine(EngineKind::Circuit)
            .with_execution(ExecutionMode::Noisy {
                noise: NoiseModel::brisbane(),
                shots: None,
            });
        oracle.validate().unwrap();
    }

    #[test]
    fn noisy_engine_selection_respects_register_width() {
        use qsim::NoiseModel;
        // 7 data qubits would need a 15-qubit mixed-state observable on
        // the dense path: a forced dense engine must fail at validation
        // rather than on a huge allocation…
        let forced = QuorumConfig::default()
            .with_data_qubits(7)
            .with_engine(EngineKind::Density)
            .with_execution(ExecutionMode::Noisy {
                noise: NoiseModel::brisbane(),
                shots: None,
            });
        assert!(forced.validate().is_err());
        // …but Auto resolves wide noisy registers to the structured
        // engine, which never materialises a 16^n object, so the same
        // width validates (up to the global configuration cap).
        for n in [5, 7, 10] {
            let auto =
                QuorumConfig::default()
                    .with_data_qubits(n)
                    .with_execution(ExecutionMode::Noisy {
                        noise: NoiseModel::brisbane(),
                        shots: None,
                    });
            auto.validate().unwrap();
            assert_eq!(auto.effective_engine(), EngineKind::DensityStructured);
        }
        // Below the crossover Auto keeps the dense engine, and the
        // widest dense-supported register still validates when forced.
        let narrow = QuorumConfig::default().with_execution(ExecutionMode::Noisy {
            noise: NoiseModel::brisbane(),
            shots: None,
        });
        assert_eq!(narrow.effective_engine(), EngineKind::Density);
        let ok = QuorumConfig::default()
            .with_data_qubits(6)
            .with_engine(EngineKind::Density)
            .with_execution(ExecutionMode::Noisy {
                noise: NoiseModel::brisbane(),
                shots: None,
            });
        ok.validate().unwrap();
        // The structured engine still requires Noisy execution.
        let pure = QuorumConfig::default().with_engine(EngineKind::DensityStructured);
        assert!(pure.validate().is_err());
    }

    #[test]
    fn noisy_mode_validates_shots() {
        use qsim::NoiseModel;
        let ok = QuorumConfig::default().with_execution(ExecutionMode::Noisy {
            noise: NoiseModel::brisbane(),
            shots: Some(4096),
        });
        ok.validate().unwrap();
        let bad = QuorumConfig::default().with_execution(ExecutionMode::Noisy {
            noise: NoiseModel::brisbane(),
            shots: Some(0),
        });
        assert!(bad.validate().is_err());
    }
}
