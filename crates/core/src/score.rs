//! Anomaly-score reports: the detector's output with evaluation helpers.

use qmetrics::confusion::ConfusionMatrix;
use qmetrics::curve::{detection_rate_curve, CurvePoint};
use qmetrics::threshold::{flag_top_fraction, flag_top_n, top_n_indices};

/// Per-sample anomaly scores from a full Quorum run (sum of absolute
/// bucket z-scores over every ensemble group and compression level —
/// Fig. 7; Fig. 10 plots exactly these values sorted).
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreReport {
    dataset_name: String,
    scores: Vec<f64>,
    ensemble_groups: usize,
    compression_levels: Vec<usize>,
}

impl ScoreReport {
    /// Assembles a report.
    pub fn new(
        dataset_name: impl Into<String>,
        scores: Vec<f64>,
        ensemble_groups: usize,
        compression_levels: Vec<usize>,
    ) -> Self {
        ScoreReport {
            dataset_name: dataset_name.into(),
            scores,
            ensemble_groups,
            compression_levels,
        }
    }

    /// The dataset this report scored.
    pub fn dataset_name(&self) -> &str {
        &self.dataset_name
    }

    /// Raw per-sample anomaly scores (higher = more anomalous).
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Number of samples scored.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Ensemble groups that contributed.
    pub fn ensemble_groups(&self) -> usize {
        self.ensemble_groups
    }

    /// Compression levels that contributed (reset counts).
    pub fn compression_levels(&self) -> &[usize] {
        &self.compression_levels
    }

    /// Sample indices sorted by descending score.
    pub fn ranking(&self) -> Vec<usize> {
        top_n_indices(&self.scores, self.scores.len())
    }

    /// Flags the `n` highest-scoring samples.
    pub fn flag_top_n(&self, n: usize) -> Vec<bool> {
        flag_top_n(&self.scores, n)
    }

    /// Flags the top `fraction` of samples.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn flag_top_fraction(&self, fraction: f64) -> Vec<bool> {
        flag_top_fraction(&self.scores, fraction)
    }

    /// Evaluates the natural operating point — flag exactly as many samples
    /// as there are true anomalies — against ground-truth labels. This is
    /// how the paper's Fig. 8 metrics are computed for Quorum.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != self.len()`.
    pub fn evaluate_at_anomaly_count(&self, labels: &[bool]) -> ConfusionMatrix {
        assert_eq!(labels.len(), self.len(), "label count mismatch");
        let n_anomalies = labels.iter().filter(|&&l| l).count();
        let flags = self.flag_top_n(n_anomalies);
        ConfusionMatrix::from_predictions(labels, &flags)
    }

    /// Evaluates an arbitrary top-`n` operating point.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != self.len()`.
    pub fn evaluate_top_n(&self, labels: &[bool], n: usize) -> ConfusionMatrix {
        assert_eq!(labels.len(), self.len(), "label count mismatch");
        let flags = self.flag_top_n(n);
        ConfusionMatrix::from_predictions(labels, &flags)
    }

    /// The detection-rate curve against ground truth (Fig. 9's series).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != self.len()`.
    pub fn detection_curve(&self, labels: &[bool]) -> Vec<CurvePoint> {
        assert_eq!(labels.len(), self.len(), "label count mismatch");
        detection_rate_curve(&self.scores, labels)
    }

    /// Scores sorted ascending together with the matching label — the data
    /// behind Fig. 10's separation plot.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != self.len()`.
    pub fn sorted_with_labels(&self, labels: &[bool]) -> Vec<(f64, bool)> {
        assert_eq!(labels.len(), self.len(), "label count mismatch");
        let mut pairs: Vec<(f64, bool)> = self
            .scores
            .iter()
            .copied()
            .zip(labels.iter().copied())
            .collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ScoreReport {
        ScoreReport::new("demo", vec![1.0, 8.0, 2.0, 9.0, 0.5], 10, vec![1, 2])
    }

    #[test]
    fn accessors() {
        let r = report();
        assert_eq!(r.dataset_name(), "demo");
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
        assert_eq!(r.ensemble_groups(), 10);
        assert_eq!(r.compression_levels(), &[1, 2]);
    }

    #[test]
    fn ranking_descends() {
        assert_eq!(report().ranking(), vec![3, 1, 2, 0, 4]);
    }

    #[test]
    fn flags_and_evaluation() {
        let r = report();
        let labels = [false, true, false, true, false];
        let cm = r.evaluate_at_anomaly_count(&labels);
        // Two anomalies, both at the top of the ranking: perfect.
        assert_eq!(cm.f1(), 1.0);
        let cm1 = r.evaluate_top_n(&labels, 1);
        assert_eq!(cm1.true_positives(), 1);
        assert_eq!(cm1.false_negatives(), 1);
    }

    #[test]
    fn detection_curve_reaches_one() {
        let r = report();
        let labels = [false, true, false, true, false];
        let curve = r.detection_curve(&labels);
        assert!((curve.last().unwrap().fraction_detected - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sorted_with_labels_ascends() {
        let r = report();
        let labels = [false, true, false, true, false];
        let sorted = r.sorted_with_labels(&labels);
        for w in sorted.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        // The top two scores are the anomalies.
        assert!(sorted[3].1 && sorted[4].1);
    }

    #[test]
    fn clone_and_equality() {
        let r = report();
        let copy = r.clone();
        assert_eq!(copy, r);
    }

    #[test]
    #[should_panic(expected = "label count")]
    fn evaluation_validates_lengths() {
        report().evaluate_at_anomaly_count(&[true]);
    }
}
