//! Quantum embedding: normalised features → amplitude vector with an
//! overflow state (paper §IV-B).
//!
//! After range normalisation every selected feature value `f_j` lies in
//! `[0, 1/M]`; squaring converts it to a probability mass, and the
//! remaining mass `1 − Σ f_j²` is assigned to the **overflow state** — the
//! last basis state of the register — so the total quantum probability is
//! exactly 1.

use crate::error::QuorumError;

/// Builds the `2^n`-entry amplitude vector for one sample's selected
/// feature values: `[f_0, …, f_{m-1}, 0…, √(1 − Σ f_j²)]` with the overflow
/// amplitude in the last slot.
///
/// # Errors
///
/// * [`QuorumError::InvalidData`] if more than `2^n − 1` values are given,
///   a value is negative/non-finite, or the squared sum exceeds 1 beyond
///   numerical tolerance.
///
/// # Examples
///
/// ```
/// use quorum_core::embed::amplitudes_with_overflow;
///
/// let amps = amplitudes_with_overflow(&[0.3, 0.4], 2).unwrap();
/// assert_eq!(amps.len(), 4);
/// let total: f64 = amps.iter().map(|a| a * a).sum();
/// assert!((total - 1.0).abs() < 1e-12);
/// assert!((amps[3] - (1.0f64 - 0.25).sqrt()).abs() < 1e-12);
/// ```
pub fn amplitudes_with_overflow(values: &[f64], n_qubits: usize) -> Result<Vec<f64>, QuorumError> {
    let mut amps = vec![0.0; 1usize << n_qubits];
    amplitudes_with_overflow_into(values, n_qubits, &mut amps)?;
    Ok(amps)
}

/// Allocation-free variant of [`amplitudes_with_overflow`]: writes the
/// amplitude vector into `out`, which must already have length `2^n`. The
/// batched scoring engine reuses one scratch buffer across a whole batch.
///
/// # Errors
///
/// Same conditions as [`amplitudes_with_overflow`], plus
/// [`QuorumError::InvalidData`] when `out.len() != 2^n`.
pub fn amplitudes_with_overflow_into(
    values: &[f64],
    n_qubits: usize,
    out: &mut [f64],
) -> Result<(), QuorumError> {
    let dim = 1usize << n_qubits;
    if out.len() != dim {
        return Err(QuorumError::InvalidData(format!(
            "amplitude buffer holds {} slots, the {n_qubits}-qubit register needs {dim}",
            out.len()
        )));
    }
    if values.len() > dim - 1 {
        return Err(QuorumError::InvalidData(format!(
            "{} feature values do not fit in {} amplitude slots (one is reserved for overflow)",
            values.len(),
            dim - 1
        )));
    }
    let mut sum_sq = 0.0;
    for (i, &v) in values.iter().enumerate() {
        if !v.is_finite() || v < 0.0 {
            return Err(QuorumError::InvalidData(format!(
                "feature value at position {i} is {v}; normalised features must be finite and non-negative"
            )));
        }
        sum_sq += v * v;
    }
    if sum_sq > 1.0 + 1e-9 {
        return Err(QuorumError::InvalidData(format!(
            "squared feature mass {sum_sq} exceeds 1; apply range normalisation first"
        )));
    }
    out[..values.len()].copy_from_slice(values);
    out[values.len()..dim - 1].fill(0.0);
    out[dim - 1] = (1.0 - sum_sq).max(0.0).sqrt();
    Ok(())
}

/// Maximum number of embeddable features for a register width: `2^n − 1`.
pub fn max_features(n_qubits: usize) -> usize {
    (1 << n_qubits) - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_completes_probability_mass() {
        let amps = amplitudes_with_overflow(&[0.1, 0.2, 0.3], 2).unwrap();
        let total: f64 = amps.iter().map(|a| a * a).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(amps.len(), 4);
        // features occupy the leading slots
        assert_eq!(amps[0], 0.1);
        assert_eq!(amps[1], 0.2);
        assert_eq!(amps[2], 0.3);
    }

    #[test]
    fn fewer_features_than_slots_pads_with_zero() {
        let amps = amplitudes_with_overflow(&[0.5], 3).unwrap();
        assert_eq!(amps.len(), 8);
        assert_eq!(amps[1..7], [0.0; 6]);
        assert!((amps[7] - 0.75f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn zero_sample_is_pure_overflow() {
        let amps = amplitudes_with_overflow(&[0.0, 0.0], 2).unwrap();
        assert!((amps[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_mass_leaves_zero_overflow() {
        let amps = amplitudes_with_overflow(&[1.0], 1).unwrap();
        assert_eq!(amps[1], 0.0);
        // Tiny floating overshoot is clamped, not an error.
        let v = (0.5f64).sqrt();
        let amps = amplitudes_with_overflow(&[v, v], 2).unwrap();
        assert!(amps[3] < 1e-7);
    }

    #[test]
    fn rejects_too_many_values() {
        assert!(matches!(
            amplitudes_with_overflow(&[0.1; 4], 2),
            Err(QuorumError::InvalidData(_))
        ));
    }

    #[test]
    fn rejects_negative_and_nonfinite() {
        assert!(amplitudes_with_overflow(&[-0.1], 2).is_err());
        assert!(amplitudes_with_overflow(&[f64::NAN], 2).is_err());
        assert!(amplitudes_with_overflow(&[f64::INFINITY], 2).is_err());
    }

    #[test]
    fn rejects_unnormalised_mass() {
        assert!(amplitudes_with_overflow(&[1.0, 1.0], 2).is_err());
    }

    #[test]
    fn max_features_formula() {
        assert_eq!(max_features(3), 7);
        assert_eq!(max_features(4), 15);
    }

    #[test]
    fn into_variant_matches_and_overwrites_stale_state() {
        let mut scratch = vec![0.9; 8]; // stale garbage everywhere
        amplitudes_with_overflow_into(&[0.1, 0.2], 3, &mut scratch).unwrap();
        assert_eq!(scratch, amplitudes_with_overflow(&[0.1, 0.2], 3).unwrap());

        let mut wrong_size = vec![0.0; 4];
        assert!(amplitudes_with_overflow_into(&[0.1], 3, &mut wrong_size).is_err());
    }
}
