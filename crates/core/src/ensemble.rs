//! Ensemble groups: one complete randomized pass of Quorum over the
//! dataset (paper §IV-E).
//!
//! A group owns a fresh bucket partition, feature subset and ansatz draw.
//! It evaluates every sample's SWAP-test deviation at every compression
//! level and converts them to per-bucket absolute z-scores. Groups are
//! independent — the detector fans them out across threads.

use crate::ansatz::AnsatzParams;
use crate::bucket::BucketPlan;
use crate::cache::ByteBounded;
use crate::config::QuorumConfig;
use crate::engine::{self, ScoringEngine};
use crate::error::QuorumError;
use crate::features::FeatureSelection;
use qdata::Dataset;
use qmetrics::stats;
use qsim::channel::ChannelProgram;
use qsim::matrix::CMatrix;
use qsim::NoiseModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// SplitMix64: deterministic per-index seed derivation from a master seed.
pub(crate) fn derive_seed(master: u64, index: u64) -> u64 {
    let mut z = master ^ index.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Lazily fused encoder unitary, computed at most once per group and
/// shared by every compression level (and engine) that scores the group.
/// The fusion counter backs the cache regression tests.
#[derive(Debug, Default)]
struct EncoderCache {
    fused: OnceLock<CMatrix>,
    fusions: AtomicUsize,
}

impl Clone for EncoderCache {
    /// Clones start cold: the cache is derived state, and sharing it would
    /// entangle otherwise independent group copies.
    fn clone(&self) -> Self {
        EncoderCache::default()
    }
}

/// Bytes one group's superoperator cache may retain. Every level of
/// the supported widths up to `n = 5` fits (a `4^n × 4^n` entry is
/// ~1 MiB at n = 4, ~16 MiB at n = 5); the n = 6 extreme (~268 MiB
/// per entry) is rebuilt per scoring pass instead of pinned, which
/// keeps a wide multi-group ensemble from retaining hundreds of
/// gigabytes.
const NOISY_SUPEROP_CACHE_BYTES: usize = 64 << 20;

/// Bytes one group's program cache may retain — programs are a
/// few KiB, so this holds hundreds of `(model, level)` pairs.
const CHANNEL_PROGRAM_CACHE_BYTES: usize = 1 << 20;

/// One randomized ensemble group: buckets, feature subset and ansatz.
///
/// The three per-group caches — the fused encoder, the fused noisy
/// superoperators and the lowered channel programs — live on the group
/// itself, so a **resident** group (the serving runtime keeps thawed
/// groups alive for the process lifetime) amortises every fusion across
/// all requests that score through it. The two keyed caches share the
/// poison-recovering, oldest-first-evicting [`ByteBounded`] store.
#[derive(Debug, Clone)]
pub struct EnsembleGroup {
    index: usize,
    ansatz: AnsatzParams,
    features: FeatureSelection,
    buckets: Vec<Vec<usize>>,
    encoder_cache: EncoderCache,
    noisy_superop_cache: ByteBounded<(NoiseModel, usize), CMatrix>,
    channel_program_cache: ByteBounded<(NoiseModel, usize), ChannelProgram>,
}

impl EnsembleGroup {
    /// Draws the group's random state deterministically from the config's
    /// master seed and the group index.
    pub fn generate(
        index: usize,
        config: &QuorumConfig,
        num_features: usize,
        plan: &BucketPlan,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(derive_seed(config.seed, index as u64));
        let buckets = plan.assign(&mut rng);
        let features =
            FeatureSelection::random(num_features, config.features_per_circuit(), &mut rng);
        let ansatz = AnsatzParams::random(config.data_qubits, config.ansatz_layers, &mut rng);
        Self::from_parts(index, ansatz, features, buckets)
    }

    /// Reassembles a group from explicitly given parts — the thaw half
    /// of the serving runtime's freeze/thaw round trip, and the seam for
    /// any caller that stores a group's random draw externally instead
    /// of re-deriving it from a seed. All caches start cold;
    /// [`EnsembleGroup::prime_fused_encoder`] can re-seat a stored
    /// encoder without paying (or counting) a fusion.
    pub fn from_parts(
        index: usize,
        ansatz: AnsatzParams,
        features: FeatureSelection,
        buckets: Vec<Vec<usize>>,
    ) -> Self {
        EnsembleGroup {
            index,
            ansatz,
            features,
            buckets,
            encoder_cache: EncoderCache::default(),
            noisy_superop_cache: ByteBounded::new(),
            channel_program_cache: ByteBounded::new(),
        }
    }

    /// The group index within the ensemble.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The group's bucket partition (sample indices).
    pub fn buckets(&self) -> &[Vec<usize>] {
        &self.buckets
    }

    /// The group's feature subset.
    pub fn features(&self) -> &FeatureSelection {
        &self.features
    }

    /// The group's random ansatz.
    pub fn ansatz(&self) -> &AnsatzParams {
        &self.ansatz
    }

    /// The group's encoder circuit fused into a dense `2^n × 2^n` unitary,
    /// computed on first use and cached for the group's lifetime — every
    /// compression level of a scoring pass reuses the same matrix instead
    /// of re-fusing per reset count.
    ///
    /// # Errors
    ///
    /// Propagates [`qsim::circuit::Circuit::to_unitary`] failures (the
    /// encoder is purely unitary, so this is effectively infallible).
    pub fn fused_encoder(&self) -> Result<&CMatrix, QuorumError> {
        if let Some(u) = self.encoder_cache.fused.get() {
            return Ok(u);
        }
        let u = self.ansatz.encoder().to_unitary()?;
        self.encoder_cache.fusions.fetch_add(1, Ordering::Relaxed);
        // Under a (harmless) race the first writer wins; both fused the
        // same deterministic matrix.
        let _ = self.encoder_cache.fused.set(u);
        Ok(self
            .encoder_cache
            .fused
            .get()
            .expect("cache was just populated"))
    }

    /// How many times this group actually fused its encoder circuit — the
    /// observable behind the unitary-cache regression tests. Stays at most
    /// 1 for any sequential scoring pass.
    pub fn encoder_fusions(&self) -> usize {
        self.encoder_cache.fusions.load(Ordering::Relaxed)
    }

    /// Seats an externally stored fused encoder (e.g. one thawed from a
    /// frozen serving artifact) without paying or counting a fusion.
    /// No-op when the cache is already populated; the caller is
    /// responsible for the matrix actually being this group's encoder
    /// (the serving artifact's checksum guards the stored copy).
    pub fn prime_fused_encoder(&self, encoder: CMatrix) {
        let _ = self.encoder_cache.fused.set(encoder);
    }

    /// The group's bottlenecked autoencoder segment (encoder, `reset_count`
    /// resets, decoder) fused into a `4^n × 4^n` noisy superoperator over
    /// `vec(ρ)`, built at most once per `(noise model, compression level)`
    /// and cached for the group's lifetime — a noisy scoring pass applies
    /// the same matrix to the whole packed sample batch in one GEMM (or
    /// per sample, through the per-sample oracle engine).
    ///
    /// # Errors
    ///
    /// Propagates [`crate::engine`] superoperator-construction failures
    /// (effectively infallible for valid ansätze).
    pub fn fused_noisy_superop(
        &self,
        noise: &NoiseModel,
        reset_count: usize,
    ) -> Result<Arc<CMatrix>, QuorumError> {
        self.fused_noisy_superop_bounded(noise, reset_count, NOISY_SUPEROP_CACHE_BYTES)
    }

    /// [`EnsembleGroup::fused_noisy_superop`] with an explicit byte
    /// budget, so the eviction-policy regression tests can overflow the
    /// cache without building gigabytes of superoperators. The fusion
    /// happens **outside** the cache lock — concurrent scorers of the
    /// same group never serialise behind a multi-ms build (racing
    /// duplicates are counted and the first insert wins) — and an
    /// overflowing insert evicts oldest-first, never the hot entries.
    pub(crate) fn fused_noisy_superop_bounded(
        &self,
        noise: &NoiseModel,
        reset_count: usize,
        budget: usize,
    ) -> Result<Arc<CMatrix>, QuorumError> {
        let superop_bytes = |m: &CMatrix| m.rows() * m.cols() * std::mem::size_of::<qsim::C64>();
        self.noisy_superop_cache.get_or_try_build(
            &(noise.clone(), reset_count),
            budget,
            superop_bytes,
            || engine::build_noisy_superop(&self.ansatz, noise, reset_count),
        )
    }

    /// The group's bottlenecked autoencoder segment lowered into a
    /// structured per-gate [`ChannelProgram`], built at most once per
    /// `(noise model, compression level)` and cached for the group's
    /// lifetime — the structured density engine's `O(gates)` analogue of
    /// [`EnsembleGroup::fused_noisy_superop`], applied op by op over the
    /// whole packed panel instead of as one `16^n` GEMM.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::engine`] lowering failures (effectively
    /// infallible for valid ansätze).
    pub fn channel_program(
        &self,
        noise: &NoiseModel,
        reset_count: usize,
    ) -> Result<Arc<ChannelProgram>, QuorumError> {
        self.channel_program_bounded(noise, reset_count, CHANNEL_PROGRAM_CACHE_BYTES)
    }

    /// [`EnsembleGroup::channel_program`] with an explicit byte budget
    /// (the eviction-test seam). The lowering runs **outside** the cache
    /// lock: a multi-ms build must not serialise the other scorer
    /// threads of a long-lived server behind the mutex — racing builders
    /// duplicate the work (each counted) and the first insert wins.
    pub(crate) fn channel_program_bounded(
        &self,
        noise: &NoiseModel,
        reset_count: usize,
        budget: usize,
    ) -> Result<Arc<ChannelProgram>, QuorumError> {
        self.channel_program_cache.get_or_try_build(
            &(noise.clone(), reset_count),
            budget,
            ChannelProgram::approx_bytes,
            || engine::build_channel_program(&self.ansatz, noise, reset_count),
        )
    }

    /// How many channel programs this group actually lowered — the
    /// observable behind the structured engine's cache regression tests,
    /// mirroring [`EnsembleGroup::noisy_superop_fusions`]. Sequential
    /// passes count exactly the distinct live `(noise model, level)`
    /// pairs; racing scorers may briefly duplicate a lowering (built
    /// outside the lock) and every duplicate is counted.
    pub fn channel_program_fusions(&self) -> usize {
        self.channel_program_cache.builds()
    }

    /// How many noisy superoperators this group actually fused — the
    /// observable behind the density engine's cache regression tests.
    /// Stays at the number of distinct `(noise model, compression level)`
    /// pairs scored — however many samples and passes ran — as long as the
    /// entries fit the cache's byte bound (always true at the paper's
    /// widths; only the n = 6 extreme re-fuses per pass). Like
    /// [`EnsembleGroup::channel_program_fusions`], racing builders each
    /// count.
    pub fn noisy_superop_fusions(&self) -> usize {
        self.noisy_superop_cache.builds()
    }

    /// Deliberately poisons both keyed derived-object caches by
    /// panicking threads that hold their mutexes — the chaos-suite
    /// fault-injection hook. Scoring through a poisoned cache must keep
    /// working (guards are recovered via `PoisonError::into_inner`), so
    /// this models a scorer thread that crashed while holding a cache
    /// lock, not data corruption: entries are write-once-valid.
    #[cfg(any(test, feature = "failpoints"))]
    pub fn poison_derived_caches(&self) {
        self.noisy_superop_cache.poison_for_test();
        self.channel_program_cache.poison_for_test();
    }

    /// Drops every cached fused superoperator and lowered channel
    /// program, leaving the build counters intact — the cold-restart
    /// chaos hook. A supervisor that restarts a worker re-warms these
    /// through the same build path, so the counters observe exactly what
    /// a restart pays.
    #[cfg(any(test, feature = "failpoints"))]
    pub fn purge_derived_caches(&self) {
        self.noisy_superop_cache.purge();
        self.channel_program_cache.purge();
    }

    /// Evaluates the SWAP-test deviation of every sample at one
    /// compression level, through the engine the configuration selects.
    ///
    /// # Errors
    ///
    /// Propagates embedding and simulation failures.
    pub fn deviations(
        &self,
        normalized: &Dataset,
        config: &QuorumConfig,
        reset_count: usize,
    ) -> Result<Vec<f64>, QuorumError> {
        self.deviations_with(engine::resolve(config)?, normalized, config, reset_count)
    }

    /// Evaluates deviations with an explicitly chosen engine (equivalence
    /// tests and the engine-comparison bench).
    ///
    /// # Errors
    ///
    /// Propagates embedding and simulation failures.
    pub fn deviations_with(
        &self,
        engine: &dyn ScoringEngine,
        normalized: &Dataset,
        config: &QuorumConfig,
        reset_count: usize,
    ) -> Result<Vec<f64>, QuorumError> {
        engine.deviations(self, normalized, config, reset_count)
    }

    /// Runs the full group: all compression levels, bucket statistics, and
    /// absolute z-score accumulation. Returns this group's additive
    /// contribution to every sample's anomaly score (Fig. 7).
    ///
    /// # Errors
    ///
    /// Propagates embedding and simulation failures.
    pub fn run(
        &self,
        normalized: &Dataset,
        config: &QuorumConfig,
    ) -> Result<Vec<f64>, QuorumError> {
        self.run_with(engine::resolve(config)?, normalized, config)
    }

    /// Runs the full group with an explicitly chosen engine. The detector
    /// resolves the engine once and passes it to every group.
    ///
    /// # Errors
    ///
    /// Propagates embedding and simulation failures.
    pub fn run_with(
        &self,
        engine: &dyn ScoringEngine,
        normalized: &Dataset,
        config: &QuorumConfig,
    ) -> Result<Vec<f64>, QuorumError> {
        let n = normalized.num_samples();
        let mut scores = vec![0.0; n];
        // One engine call for the whole level sweep lets batched engines
        // amortise packing and the encoder product across levels.
        let levels = config.effective_compression_levels();
        let per_level = engine.deviations_all_levels(self, normalized, config, &levels)?;
        let mut values = Vec::new();
        for deviations in &per_level {
            for bucket in &self.buckets {
                values.clear();
                values.extend(bucket.iter().map(|&i| deviations[i]));
                let mu = stats::mean(&values);
                let sigma = stats::population_std(&values);
                for &i in bucket {
                    scores[i] += stats::zscore(deviations[i], mu, sigma).abs();
                }
            }
        }
        Ok(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecutionMode;

    fn tiny_dataset() -> Dataset {
        // 12 samples, 7 features, already in the normalised range
        // [0, 1/7]; sample 11 is a gross outlier direction.
        let mut rows = Vec::new();
        for i in 0..11 {
            let base = 0.06 + 0.002 * (i as f64);
            rows.push(vec![
                base,
                base * 0.9,
                base * 1.1,
                base,
                base * 0.95,
                base,
                base * 1.05,
            ]);
        }
        rows.push(vec![0.14, 0.0, 0.14, 0.0, 0.14, 0.0, 0.14]);
        Dataset::from_rows("tiny", rows, None).unwrap()
    }

    fn config() -> QuorumConfig {
        QuorumConfig::default()
            .with_ensemble_groups(4)
            .with_anomaly_rate_estimate(0.1)
            .with_seed(11)
    }

    #[test]
    fn generation_is_deterministic_per_index() {
        let ds = tiny_dataset();
        let cfg = config();
        let plan = BucketPlan::from_target(ds.num_samples(), 0.1, cfg.bucket_probability);
        let a = EnsembleGroup::generate(3, &cfg, ds.num_features(), &plan);
        let b = EnsembleGroup::generate(3, &cfg, ds.num_features(), &plan);
        assert_eq!(a.buckets(), b.buckets());
        assert_eq!(a.features(), b.features());
        assert_eq!(a.ansatz(), b.ansatz());
        let c = EnsembleGroup::generate(4, &cfg, ds.num_features(), &plan);
        assert_ne!(a.buckets(), c.buckets());
    }

    #[test]
    fn deviations_are_valid_probabilities() {
        let ds = tiny_dataset();
        let cfg = config();
        let plan = BucketPlan::from_target(ds.num_samples(), 0.1, cfg.bucket_probability);
        let group = EnsembleGroup::generate(0, &cfg, ds.num_features(), &plan);
        let dev = group.deviations(&ds, &cfg, 1).unwrap();
        assert_eq!(dev.len(), ds.num_samples());
        for &p in &dev {
            assert!((0.0..=0.5 + 1e-9).contains(&p), "deviation {p}");
        }
    }

    #[test]
    fn group_scores_are_nonnegative_and_finite() {
        let ds = tiny_dataset();
        let cfg = config();
        let plan = BucketPlan::from_target(ds.num_samples(), 0.1, cfg.bucket_probability);
        let group = EnsembleGroup::generate(1, &cfg, ds.num_features(), &plan);
        let scores = group.run(&ds, &cfg).unwrap();
        assert_eq!(scores.len(), ds.num_samples());
        for &s in &scores {
            assert!(s.is_finite() && s >= 0.0);
        }
        // Somebody must deviate from the bucket mean.
        assert!(scores.iter().any(|&s| s > 0.0));
    }

    #[test]
    fn sampled_mode_approaches_exact_with_many_shots() {
        let ds = tiny_dataset();
        let cfg_exact = config();
        let cfg_shots = config().with_execution(ExecutionMode::Sampled { shots: 60_000 });
        let plan = BucketPlan::from_target(ds.num_samples(), 0.1, 0.75);
        let group = EnsembleGroup::generate(0, &cfg_exact, ds.num_features(), &plan);
        let exact = group.deviations(&ds, &cfg_exact, 1).unwrap();
        let sampled = group.deviations(&ds, &cfg_shots, 1).unwrap();
        for (e, s) in exact.iter().zip(&sampled) {
            assert!((e - s).abs() < 0.02, "exact {e} vs sampled {s}");
        }
    }

    #[test]
    fn sampled_mode_is_seed_deterministic() {
        let ds = tiny_dataset();
        let cfg = config().with_execution(ExecutionMode::Sampled { shots: 256 });
        let plan = BucketPlan::from_target(ds.num_samples(), 0.1, 0.75);
        let group = EnsembleGroup::generate(2, &cfg, ds.num_features(), &plan);
        let a = group.deviations(&ds, &cfg, 1).unwrap();
        let b = group.deviations(&ds, &cfg, 1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fused_encoder_is_cached_and_correct() {
        let ds = tiny_dataset();
        let cfg = config();
        let plan = BucketPlan::from_target(ds.num_samples(), 0.1, cfg.bucket_probability);
        let group = EnsembleGroup::generate(0, &cfg, ds.num_features(), &plan);
        assert_eq!(group.encoder_fusions(), 0);
        let direct = group.ansatz().encoder().to_unitary().unwrap();
        let cached = group.fused_encoder().unwrap().clone();
        assert!(cached.approx_eq(&direct, 1e-12));
        // Repeated access hits the cache instead of re-fusing.
        let again = group.fused_encoder().unwrap();
        assert!(again.approx_eq(&direct, 1e-12));
        assert_eq!(group.encoder_fusions(), 1);
    }

    #[test]
    fn from_parts_reassembles_an_identical_group() {
        let ds = tiny_dataset();
        let cfg = config();
        let plan = BucketPlan::from_target(ds.num_samples(), 0.1, cfg.bucket_probability);
        let generated = EnsembleGroup::generate(2, &cfg, ds.num_features(), &plan);
        let rebuilt = EnsembleGroup::from_parts(
            generated.index(),
            generated.ansatz().clone(),
            generated.features().clone(),
            generated.buckets().to_vec(),
        );
        assert_eq!(rebuilt.index(), generated.index());
        assert_eq!(rebuilt.encoder_fusions(), 0);
        let a = generated.run(&ds, &cfg).unwrap();
        let b = rebuilt.run(&ds, &cfg).unwrap();
        assert_eq!(a, b, "a reassembled group must score bit-identically");
    }

    #[test]
    fn primed_encoder_is_used_without_a_fusion() {
        let ds = tiny_dataset();
        let cfg = config();
        let plan = BucketPlan::from_target(ds.num_samples(), 0.1, cfg.bucket_probability);
        let group = EnsembleGroup::generate(0, &cfg, ds.num_features(), &plan);
        let encoder = group.ansatz().encoder().to_unitary().unwrap();
        group.prime_fused_encoder(encoder.clone());
        let cached = group.fused_encoder().unwrap();
        assert!(
            cached.approx_eq(&encoder, 0.0),
            "the primed matrix is served"
        );
        assert_eq!(
            group.encoder_fusions(),
            0,
            "priming must not count a fusion"
        );
    }

    #[test]
    fn scoring_survives_poisoned_group_caches() {
        // The long-lived-server regression: a scorer thread that panics
        // while holding a cache mutex must not wedge every later request
        // on that group. Poison both keyed caches, then score again and
        // expect identical results.
        let ds = tiny_dataset();
        let noise = NoiseModel::brisbane();
        let cfg = config().with_execution(crate::config::ExecutionMode::Noisy {
            noise: noise.clone(),
            shots: None,
        });
        let plan = BucketPlan::from_target(ds.num_samples(), 0.1, cfg.bucket_probability);
        let group = EnsembleGroup::generate(1, &cfg, ds.num_features(), &plan);
        let before_dense = group.run_with(&engine::DensityEngine, &ds, &cfg).unwrap();
        let before_structured = group
            .run_with(&engine::StructuredDensityEngine, &ds, &cfg)
            .unwrap();
        group.noisy_superop_cache.poison_for_test();
        group.channel_program_cache.poison_for_test();
        let after_dense = group.run_with(&engine::DensityEngine, &ds, &cfg).unwrap();
        let after_structured = group
            .run_with(&engine::StructuredDensityEngine, &ds, &cfg)
            .unwrap();
        assert_eq!(before_dense, after_dense);
        assert_eq!(before_structured, after_structured);
        // The pre-poison entries survived: no re-fusion was needed.
        let levels = cfg.effective_compression_levels().len();
        assert_eq!(group.noisy_superop_fusions(), levels);
        assert_eq!(group.channel_program_fusions(), levels);
    }

    #[test]
    fn superop_overflow_evicts_oldest_and_spares_the_hot_entry() {
        // The eviction-policy pin: an n = 3 superoperator is
        // 64·64·16 B = 64 KiB, so a 150 KB budget holds two entries.
        // Fill with (brisbane, 1) and (brisbane, 2), touch level 1 to
        // make it hot, then overflow with a third model: level 2 (the
        // oldest) must be the only casualty.
        let ds = tiny_dataset();
        let cfg = config();
        let plan = BucketPlan::from_target(ds.num_samples(), 0.1, cfg.bucket_probability);
        let group = EnsembleGroup::generate(0, &cfg, ds.num_features(), &plan);
        let budget = 150_000;
        let brisbane = NoiseModel::brisbane();
        let scaled = NoiseModel::brisbane().scaled(2.0);
        group
            .fused_noisy_superop_bounded(&brisbane, 1, budget)
            .unwrap();
        group
            .fused_noisy_superop_bounded(&brisbane, 2, budget)
            .unwrap();
        assert_eq!(group.noisy_superop_fusions(), 2);
        group
            .fused_noisy_superop_bounded(&brisbane, 1, budget)
            .unwrap();
        group
            .fused_noisy_superop_bounded(&scaled, 1, budget)
            .unwrap();
        assert_eq!(group.noisy_superop_fusions(), 3);
        group
            .fused_noisy_superop_bounded(&brisbane, 1, budget)
            .unwrap();
        assert_eq!(
            group.noisy_superop_fusions(),
            3,
            "the hot (brisbane, 1) entry must survive the overflow insert"
        );
        group
            .fused_noisy_superop_bounded(&brisbane, 2, budget)
            .unwrap();
        assert_eq!(
            group.noisy_superop_fusions(),
            4,
            "the oldest (brisbane, 2) entry is the one evicted"
        );
    }

    #[test]
    fn program_overflow_evicts_oldest_and_spares_the_hot_entry() {
        // Same pin for the channel-program cache, with the budget
        // derived from a measured program size.
        let ds = tiny_dataset();
        let cfg = config();
        let plan = BucketPlan::from_target(ds.num_samples(), 0.1, cfg.bucket_probability);
        let group = EnsembleGroup::generate(0, &cfg, ds.num_features(), &plan);
        let brisbane = NoiseModel::brisbane();
        let scaled = NoiseModel::brisbane().scaled(2.0);
        let probe = group.channel_program(&brisbane, 1).unwrap();
        // Room for two program-sized entries, not three.
        let budget = probe.approx_bytes() * 5 / 2;
        let fresh = group.clone();
        fresh.channel_program_bounded(&brisbane, 1, budget).unwrap();
        fresh.channel_program_bounded(&brisbane, 2, budget).unwrap();
        fresh.channel_program_bounded(&brisbane, 1, budget).unwrap();
        fresh.channel_program_bounded(&scaled, 1, budget).unwrap();
        assert_eq!(fresh.channel_program_fusions(), 3);
        fresh.channel_program_bounded(&brisbane, 1, budget).unwrap();
        assert_eq!(fresh.channel_program_fusions(), 3, "hot entry survived");
        fresh.channel_program_bounded(&brisbane, 2, budget).unwrap();
        assert_eq!(fresh.channel_program_fusions(), 4, "oldest entry evicted");
    }

    #[test]
    fn derive_seed_spreads_indices() {
        let s: Vec<u64> = (0..8).map(|i| derive_seed(42, i)).collect();
        for i in 0..s.len() {
            for j in (i + 1)..s.len() {
                assert_ne!(s[i], s[j]);
            }
        }
        assert_ne!(derive_seed(42, 0), derive_seed(43, 0));
    }
}
