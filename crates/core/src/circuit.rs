//! Assembly of the full Quorum circuit for one sample (paper Fig. 2):
//! dual amplitude encoding, random encoder, partial-reset bottleneck,
//! inverse decoder, and the SWAP test against the untouched reference.
//!
//! Register layout over `2n + 1` qubits:
//!
//! * qubits `0..n` — register **A**, passed through the autoencoder,
//! * qubits `n..2n` — register **B**, the untouched reference copy,
//! * qubit `2n` — the SWAP-test ancilla, measured into classical bit 0.
//!
//! The measured probability `P(ancilla = 1) = (1 − Tr(ρ_A ρ_B)) / 2` is the
//! **deviation** of the bottlenecked state from the original: 0 when the
//! information survived perfectly, up to ½ for orthogonal states.

use crate::ansatz::AnsatzParams;
use crate::embed::amplitudes_with_overflow;
use crate::error::QuorumError;
use qsim::circuit::Circuit;
use qsim::stateprep::prepare_real_amplitudes;

/// Builds the complete measured Quorum circuit for one sample.
///
/// * `feature_values` — the sample's selected, range-normalised features
///   (at most `2^n − 1` of them).
/// * `ansatz` — the group's random encoder parameters (over `n` qubits).
/// * `reset_count` — the compression level: how many of register A's
///   top-index qubits are reset between encoder and decoder
///   (`1..=n-1`).
///
/// # Errors
///
/// Returns [`QuorumError::InvalidData`] for bad feature values and
/// [`QuorumError::InvalidConfig`] for a reset count outside `1..n`.
pub fn build_sample_circuit(
    feature_values: &[f64],
    ansatz: &AnsatzParams,
    reset_count: usize,
) -> Result<Circuit, QuorumError> {
    let n = ansatz.num_qubits();
    if reset_count == 0 || reset_count >= n {
        return Err(QuorumError::InvalidConfig(format!(
            "reset count {reset_count} must lie in 1..{n}"
        )));
    }
    let amps = amplitudes_with_overflow(feature_values, n)?;
    let prep = prepare_real_amplitudes(n, &amps).map_err(QuorumError::Simulation)?;

    let ancilla = 2 * n;
    let mut circ = Circuit::with_clbits(2 * n + 1, 1);
    // Identical encodings on A and B (Fig. 2's dual A(x) blocks).
    circ.compose(&prep, 0).map_err(QuorumError::Simulation)?;
    circ.compose(&prep, n).map_err(QuorumError::Simulation)?;
    circ.barrier();
    // Encoder on A.
    circ.compose(&ansatz.encoder(), 0)
        .map_err(QuorumError::Simulation)?;
    // Information bottleneck: reset the top `reset_count` qubits of A.
    for q in (n - reset_count)..n {
        circ.reset(q);
    }
    // Decoder on A.
    circ.compose(&ansatz.decoder(), 0)
        .map_err(QuorumError::Simulation)?;
    circ.barrier();
    // SWAP test between A and B.
    circ.h(ancilla);
    for q in 0..n {
        circ.cswap(ancilla, q, n + q);
    }
    circ.h(ancilla);
    circ.measure(ancilla, 0);
    Ok(circ)
}

/// The qubit indices reset at a given compression level (register A's
/// most-significant qubits).
pub fn reset_qubits(num_data_qubits: usize, reset_count: usize) -> Vec<usize> {
    ((num_data_qubits - reset_count)..num_data_qubits).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::simulator::{Backend, StatevectorBackend};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ansatz(seed: u64) -> AnsatzParams {
        AnsatzParams::random(3, 2, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn circuit_shape_matches_paper() {
        let circ =
            build_sample_circuit(&[0.1, 0.2, 0.05, 0.12, 0.3, 0.02, 0.07], &ansatz(1), 1).unwrap();
        // 7 qubits (2*3+1), one classical bit — the paper's configuration.
        assert_eq!(circ.num_qubits(), 7);
        assert_eq!(circ.num_clbits(), 1);
        let ops = circ.count_ops();
        let count = |name: &str| ops.iter().find(|(n, _)| n == name).map_or(0, |(_, c)| *c);
        assert_eq!(count("cswap"), 3);
        assert_eq!(count("reset"), 1);
        assert_eq!(count("measure"), 1);
        assert_eq!(count("h"), 2);
    }

    #[test]
    fn reset_count_controls_bottleneck_width() {
        let c1 = build_sample_circuit(&[0.2; 7], &ansatz(2), 1).unwrap();
        let c2 = build_sample_circuit(&[0.2; 7], &ansatz(2), 2).unwrap();
        let resets = |c: &Circuit| {
            c.count_ops()
                .iter()
                .find(|(n, _)| n == "reset")
                .map_or(0, |(_, k)| *k)
        };
        assert_eq!(resets(&c1), 1);
        assert_eq!(resets(&c2), 2);
    }

    #[test]
    fn reset_qubits_are_most_significant() {
        assert_eq!(reset_qubits(3, 1), vec![2]);
        assert_eq!(reset_qubits(3, 2), vec![1, 2]);
        assert_eq!(reset_qubits(4, 2), vec![2, 3]);
    }

    #[test]
    fn rejects_bad_reset_counts() {
        assert!(build_sample_circuit(&[0.1; 7], &ansatz(3), 0).is_err());
        assert!(build_sample_circuit(&[0.1; 7], &ansatz(3), 3).is_err());
    }

    #[test]
    fn deviation_probability_is_in_swap_test_range() {
        // P(1) must lie in [0, 1/2] for any input (overlap in [0,1]).
        let backend = StatevectorBackend::new();
        for seed in 0..6 {
            let values = [0.05 * seed as f64, 0.1, 0.02, 0.15, 0.08, 0.0, 0.11];
            let circ = build_sample_circuit(&values, &ansatz(seed), 1).unwrap();
            let p = backend.probabilities(&circ).unwrap().marginal_one(0);
            assert!(
                (0.0..=0.5 + 1e-9).contains(&p),
                "P(1) = {p} outside SWAP-test range"
            );
        }
    }

    #[test]
    fn without_reset_identity_autoencoder_shows_zero_deviation() {
        // Build the same circuit but with the bottleneck replaced by
        // nothing: encoder immediately undone by decoder => states match
        // => P(1) = 0 exactly. We emulate by building a circuit manually.
        let params = ansatz(9);
        let amps = amplitudes_with_overflow(&[0.1, 0.2, 0.05, 0.12, 0.3, 0.02, 0.07], 3).unwrap();
        let prep = prepare_real_amplitudes(3, &amps).unwrap();
        let mut circ = Circuit::with_clbits(7, 1);
        circ.compose(&prep, 0).unwrap();
        circ.compose(&prep, 3).unwrap();
        circ.compose(&params.encoder(), 0).unwrap();
        circ.compose(&params.decoder(), 0).unwrap();
        circ.h(6);
        for q in 0..3 {
            circ.cswap(6, q, 3 + q);
        }
        circ.h(6);
        circ.measure(6, 0);
        let p = StatevectorBackend::new()
            .probabilities(&circ)
            .unwrap()
            .marginal_one(0);
        assert!(p < 1e-10, "identity autoencoder deviated: {p}");
    }

    #[test]
    fn bottleneck_causes_nonzero_deviation_for_generic_input() {
        let circ =
            build_sample_circuit(&[0.25, 0.1, 0.3, 0.05, 0.2, 0.15, 0.1], &ansatz(4), 2).unwrap();
        let p = StatevectorBackend::new()
            .probabilities(&circ)
            .unwrap()
            .marginal_one(0);
        assert!(p > 1e-4, "bottleneck should lose information: {p}");
    }

    #[test]
    fn deeper_compression_loses_at_least_as_much_on_average() {
        // Averaged over several ansatz draws, resetting 2 of 3 qubits
        // should deviate at least as much as resetting 1.
        let backend = StatevectorBackend::new();
        let values = [0.2, 0.05, 0.14, 0.3, 0.01, 0.22, 0.09];
        let mut sum1 = 0.0;
        let mut sum2 = 0.0;
        for seed in 0..10 {
            let a = ansatz(100 + seed);
            let p1 = backend
                .probabilities(&build_sample_circuit(&values, &a, 1).unwrap())
                .unwrap()
                .marginal_one(0);
            let p2 = backend
                .probabilities(&build_sample_circuit(&values, &a, 2).unwrap())
                .unwrap()
                .marginal_one(0);
            sum1 += p1;
            sum2 += p2;
        }
        assert!(
            sum2 >= sum1 * 0.8,
            "deeper compression unexpectedly gentler: {sum2} vs {sum1}"
        );
    }
}
