//! Random feature selection (paper §IV-C, Fig. 4).
//!
//! Each ensemble group draws `m = 2^n − 1` feature columns uniformly at
//! random — deliberately *not* PCA: random selection is cheaper, unbiased
//! toward anomaly-relevant features, and explores combinations a variance
//! criterion would discard. When the dataset has fewer than `m` columns
//! (the power-plant data has 5 for `m = 7`), every column is used once in
//! random order and the remaining amplitude slots stay zero.

use rand::seq::SliceRandom;
use rand::Rng;

/// A per-ensemble-group feature subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureSelection {
    columns: Vec<usize>,
}

impl FeatureSelection {
    /// Draws a uniform random selection of `min(m, num_features)` distinct
    /// columns.
    ///
    /// # Panics
    ///
    /// Panics if `num_features == 0` or `m == 0`.
    pub fn random<R: Rng + ?Sized>(num_features: usize, m: usize, rng: &mut R) -> Self {
        assert!(num_features > 0, "dataset has no features");
        assert!(m > 0, "cannot select zero features");
        let mut all: Vec<usize> = (0..num_features).collect();
        all.shuffle(rng);
        all.truncate(m.min(num_features));
        FeatureSelection { columns: all }
    }

    /// Uses explicit columns (for tests and ablations).
    ///
    /// # Panics
    ///
    /// Panics on duplicate columns.
    pub fn from_columns(columns: Vec<usize>) -> Self {
        for (i, c) in columns.iter().enumerate() {
            assert!(!columns[..i].contains(c), "duplicate column {c}");
        }
        FeatureSelection { columns }
    }

    /// The selected column indices, in embedding order.
    pub fn columns(&self) -> &[usize] {
        &self.columns
    }

    /// Number of selected columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the selection is empty (never true for valid selections).
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Projects one sample row onto the selected columns.
    pub fn project(&self, row: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.project_into(row, &mut out);
        out
    }

    /// Allocation-free [`FeatureSelection::project`]: clears `out` and
    /// fills it with the selected values. The batched scoring engine
    /// reuses one scratch buffer across a whole batch.
    pub fn project_into(&self, row: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.columns.iter().map(|&c| row[c]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn selects_m_distinct_columns() {
        let mut rng = StdRng::seed_from_u64(3);
        let sel = FeatureSelection::random(30, 7, &mut rng);
        assert_eq!(sel.len(), 7);
        let mut sorted = sel.columns().to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 7, "duplicates in selection");
        assert!(sorted.iter().all(|&c| c < 30));
    }

    #[test]
    fn small_datasets_use_every_column_once() {
        // Power-plant case: M=5 < m=7.
        let mut rng = StdRng::seed_from_u64(4);
        let sel = FeatureSelection::random(5, 7, &mut rng);
        assert_eq!(sel.len(), 5);
        let mut sorted = sel.columns().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn different_draws_differ() {
        let a = FeatureSelection::random(30, 7, &mut StdRng::seed_from_u64(1));
        let b = FeatureSelection::random(30, 7, &mut StdRng::seed_from_u64(2));
        assert_ne!(a, b);
    }

    #[test]
    fn projection_reorders_row() {
        let sel = FeatureSelection::from_columns(vec![2, 0]);
        assert_eq!(sel.project(&[10.0, 20.0, 30.0]), vec![30.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn from_columns_rejects_duplicates() {
        FeatureSelection::from_columns(vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "no features")]
    fn random_rejects_empty_dataset() {
        FeatureSelection::random(0, 3, &mut StdRng::seed_from_u64(0));
    }
}
