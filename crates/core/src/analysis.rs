//! Convergence analysis: how anomaly scores stabilise as the ensemble
//! grows.
//!
//! The paper notes that "increasing both shot count and ensemble members
//! has significant impacts on performance, with benefits diminishing as
//! they increase past a certain point" (§V). Scores are additive over
//! groups, so one pass over `max(checkpoints)` groups yields the cumulative
//! score vector at every checkpoint for free.

use crate::bucket::BucketPlan;
use crate::config::QuorumConfig;
use crate::ensemble::EnsembleGroup;
use crate::error::QuorumError;
use qdata::preprocess::RangeNormalizer;
use qdata::Dataset;
use qmetrics::stats::spearman_correlation;
use qsim::parallel::map_indexed;

/// Cumulative anomaly scores after each requested ensemble size.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceTrace {
    checkpoints: Vec<usize>,
    /// `scores[k]` is the cumulative per-sample score vector after
    /// `checkpoints[k]` groups.
    scores: Vec<Vec<f64>>,
}

impl ConvergenceTrace {
    /// The checkpoint group counts, ascending.
    pub fn checkpoints(&self) -> &[usize] {
        &self.checkpoints
    }

    /// The cumulative scores at checkpoint `k`.
    pub fn scores_at(&self, k: usize) -> &[f64] {
        &self.scores[k]
    }

    /// Number of checkpoints recorded.
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }

    /// Spearman rank correlation between each checkpoint's scores and the
    /// final checkpoint's — a label-free stabilisation measure that rises
    /// toward 1 as the ensemble converges.
    pub fn rank_stability(&self) -> Vec<f64> {
        let last = match self.scores.last() {
            Some(l) => l,
            None => return Vec::new(),
        };
        self.scores
            .iter()
            .map(|s| spearman_correlation(s, last))
            .collect()
    }
}

/// Runs up to `max(checkpoints)` ensemble groups once and reports the
/// cumulative score vector at every checkpoint.
///
/// # Errors
///
/// Propagates configuration, data and simulation failures exactly as
/// [`crate::detector::QuorumDetector::score`] does.
///
/// # Examples
///
/// ```
/// use quorum_core::analysis::convergence_trace;
/// use quorum_core::QuorumConfig;
/// use qdata::Dataset;
///
/// let mut rows: Vec<Vec<f64>> = (0..12)
///     .map(|i| vec![1.0 + 0.01 * i as f64, 2.0, 3.0, 4.0])
///     .collect();
/// rows.push(vec![9.0, 0.2, 9.0, 0.1]);
/// let ds = Dataset::from_rows("demo", rows, None).unwrap();
/// let config = QuorumConfig::default().with_anomaly_rate_estimate(0.1);
/// let trace = convergence_trace(&config, &ds, &[2, 4]).unwrap();
/// assert_eq!(trace.checkpoints(), &[2, 4]);
/// let stability = trace.rank_stability();
/// assert_eq!(*stability.last().unwrap(), 1.0); // last vs itself
/// ```
pub fn convergence_trace(
    config: &QuorumConfig,
    data: &Dataset,
    checkpoints: &[usize],
) -> Result<ConvergenceTrace, QuorumError> {
    config.validate()?;
    if checkpoints.is_empty() || checkpoints.contains(&0) {
        return Err(QuorumError::InvalidConfig(
            "checkpoints must be non-empty and positive".into(),
        ));
    }
    let mut sorted: Vec<usize> = checkpoints.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let total_groups = *sorted.last().expect("non-empty");

    let unlabeled = data.strip_labels();
    let normalized = match config.normalization {
        crate::config::Normalization::RangeMax => {
            let ranged = RangeNormalizer::fit_transform(&unlabeled);
            Dataset::from_rows(
                ranged.name(),
                ranged
                    .rows()
                    .iter()
                    .map(|r| r.iter().map(|v| v.abs()).collect())
                    .collect(),
                None,
            )
            .expect("shape preserved")
        }
        crate::config::Normalization::MinMax => qdata::MinMaxNormalizer::fit_transform(&unlabeled),
    };

    let rate = config.anomaly_rate_estimate.unwrap_or(0.05);
    let plan = BucketPlan::from_target(normalized.num_samples(), rate, config.bucket_probability);
    let threads = config.effective_threads();

    let normalized_ref = &normalized;
    let plan_ref = &plan;
    let partials: Vec<Result<Vec<f64>, QuorumError>> =
        map_indexed(total_groups, threads, move |g| {
            let group = EnsembleGroup::generate(g, config, normalized_ref.num_features(), plan_ref);
            group.run(normalized_ref, config)
        });

    // Prefix-sum in group order, snapshotting at each checkpoint.
    let n = normalized.num_samples();
    let mut cumulative = vec![0.0; n];
    let mut snapshots = Vec::with_capacity(sorted.len());
    let mut next_checkpoint = 0usize;
    for (g, partial) in partials.into_iter().enumerate() {
        let partial = partial?;
        for (c, p) in cumulative.iter_mut().zip(partial) {
            *c += p;
        }
        while next_checkpoint < sorted.len() && g + 1 == sorted[next_checkpoint] {
            snapshots.push(cumulative.clone());
            next_checkpoint += 1;
        }
    }
    Ok(ConvergenceTrace {
        checkpoints: sorted,
        scores: snapshots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted() -> Dataset {
        let mut rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![2.0 + 0.05 * i as f64, 3.0, 1.0, 2.0, 4.0])
            .collect();
        rows.push(vec![9.0, 0.1, 8.0, 0.2, 0.3]);
        rows.push(vec![0.2, 9.0, 0.1, 8.5, 9.5]);
        Dataset::from_rows("conv", rows, None).unwrap()
    }

    fn config() -> QuorumConfig {
        QuorumConfig::default()
            .with_anomaly_rate_estimate(0.1)
            .with_threads(1)
            .with_seed(17)
    }

    #[test]
    fn trace_matches_detector_at_final_checkpoint() {
        use crate::detector::QuorumDetector;
        let ds = planted();
        let trace = convergence_trace(&config(), &ds, &[2, 5]).unwrap();
        let direct = QuorumDetector::new(config().with_ensemble_groups(5))
            .unwrap()
            .score(&ds)
            .unwrap();
        let final_scores = trace.scores_at(1);
        for (a, b) in final_scores.iter().zip(direct.scores()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn checkpoints_are_sorted_and_deduped() {
        let ds = planted();
        let trace = convergence_trace(&config(), &ds, &[4, 2, 4]).unwrap();
        assert_eq!(trace.checkpoints(), &[2, 4]);
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
    }

    #[test]
    fn stability_rises_toward_one() {
        let ds = planted();
        let trace = convergence_trace(&config(), &ds, &[1, 8, 16]).unwrap();
        let stability = trace.rank_stability();
        assert_eq!(stability.len(), 3);
        assert!((stability[2] - 1.0).abs() < 1e-12);
        assert!(
            stability[1] >= stability[0] - 0.1,
            "stability regressed: {stability:?}"
        );
    }

    #[test]
    fn scores_grow_monotonically_with_groups() {
        // Scores are sums of non-negative |z| terms.
        let ds = planted();
        let trace = convergence_trace(&config(), &ds, &[2, 6]).unwrap();
        for (a, b) in trace.scores_at(0).iter().zip(trace.scores_at(1)) {
            assert!(b >= a);
        }
    }

    #[test]
    fn rejects_bad_checkpoints() {
        let ds = planted();
        assert!(convergence_trace(&config(), &ds, &[]).is_err());
        assert!(convergence_trace(&config(), &ds, &[0]).is_err());
    }
}
