//! Pluggable scoring engines: how per-sample SWAP-test deviations are
//! actually evaluated.
//!
//! The paper's Fig. 2 circuit spans `2n + 1` qubits: register A runs
//! through the autoencoder, register B holds an untouched reference copy,
//! and a SWAP-test ancilla measures `P(1) = (1 − Tr(ρ_A ρ_B)) / 2`.
//! Simulating that literally ([`CircuitEngine`]) pays for a `2^(2n+1)`-dim
//! statevector, two amplitude-preparation gate sequences and CSWAP kernels
//! per sample — even though register B is never touched and the measured
//! quantity is an overlap computable on register A alone.
//!
//! [`AnalyticEngine`] exploits that reduction (the same trash/reference
//! trick used in quantum-autoencoder anomaly detection,
//! arXiv:2112.04958):
//!
//! 1. the sample's amplitudes are injected directly into an `n`-qubit
//!    state — no state-prep gates;
//! 2. the group's encoder circuit is **fused once per group** into a
//!    dense `2^n × 2^n` unitary
//!    ([`qsim::circuit::Circuit::to_unitary`]) and applied as a matvec
//!    (`φ = E ψ`);
//! 3. the `r`-qubit reset bottleneck expands into at most `2^r` weighted
//!    pure branches `(w_k, |χ_k⟩)` on `n` qubits;
//! 4. `Tr(ρ_A ρ_B) = Σ_k w_k |⟨ψ|D|χ_k⟩|²` comes from plain inner
//!    products — and since `D = E†`, each term collapses to
//!    `|⟨φ|χ_k⟩|²` over the already-encoded `φ`, so the decoder is never
//!    applied at all; `P(1) = (1 − Σ_k |⟨φ[..2^{n−r}]|block_k⟩|²) / 2`.
//!
//! [`BatchedAnalyticEngine`] — the default for noiseless runs — pushes the
//! same reduction one level further: instead of one `2^n`-dim matvec per
//! sample it packs **every** sample of the group column-wise into a single
//! `2^n × S` matrix `Ψ`, applies the fused encoder once as a blocked
//! matrix–matrix product `Φ = E·Ψ` ([`qsim::matrix::CMatrix::matmul`]),
//! and expands the reset branches as batched column dot products over `Φ`,
//! emitting the whole group's deviation vector in one call. The encoder
//! fusion itself is hoisted into a per-group `OnceLock` cache
//! ([`crate::ensemble::EnsembleGroup::fused_encoder`]) so all compression
//! levels of a group reuse one `to_unitary` result.
//!
//! [`DensityEngine`] — the default for noisy runs — carries the same
//! reduction over to mixed states. The paper's Brisbane-style noise
//! factorises over the Fig. 2 layout: every channel before the SWAP test
//! acts on register A *or* register B alone, so the pre-SWAP state is
//! exactly `|0⟩⟨0|_anc ⊗ ρ_A ⊗ ρ_B` — never a genuine `2n+1`-qubit mixed
//! state. The engine therefore:
//!
//! 1. prepares **all** samples' noisy input states in **lockstep**: the
//!    Möttönen preparation's gate skeleton is sample-independent
//!    ([`qsim::stateprep::PrepSkeleton`] — only the RY angles carry the
//!    data), so the whole batch evolves as one `4^n × S` vec(ρ) panel —
//!    per skeleton step, one per-column RY conjugation
//!    ([`qsim::density::ry_conjugate_columns`], the only sample-dependent
//!    operation) plus the **shared** channel/gate superoperators applied
//!    to the whole panel through sample-contiguous lane kernels
//!    ([`GateNoise::apply_after_gate_columns`],
//!    [`qsim::density::permute_cx_columns`]), with fixed-width column
//!    blocks distributed across workers
//!    ([`qsim::parallel::map_indexed_with`]);
//! 2. keeps the resulting `vec(ρ_in)` columns packed as the `4^n × S`
//!    matrix `P` (`ρ_B` doubles as register A's input, since Fig. 2 preps
//!    both registers identically) and pushes the whole batch through each
//!    level's **fused noisy superoperator** — encoder gates with their
//!    per-gate channels, the reset Kraus channels, and the decoder —
//!    built once per (group, compression level) by evolving the
//!    matrix-unit basis through the lowered gate list and cached on
//!    [`crate::ensemble::EnsembleGroup::fused_noisy_superop`] — as one
//!    blocked GEMM `R = S_level·P` through the SIMD kernel seam
//!    ([`qsim::matrix::CMatrix::matmul_threaded`]);
//! 3. contracts the batch against a **SWAP-test readout functional**
//!    `W` — the POVM element `|1⟩⟨1|_anc` pulled backwards (Heisenberg
//!    picture, adjoint channels) through the *noisy lowered* CSWAP
//!    network, then restricted to `ancilla = |0⟩`; `W` depends only on
//!    `(n, noise model)` and is cached globally — as a second GEMM
//!    `W·P` shared by every level, leaving one column dot product
//!    `raw_j = Σ_i R[i,j]·(WP)[i,j]` per sample;
//! 4. applies the readout confusion to the resulting `P(1)`.
//!
//! [`SampleDensityEngine`] keeps the PR 3 one-matvec-per-(sample, level)
//! path as the batched engine's cross-check oracle, exactly as
//! [`AnalyticEngine`] does for the pure-state batch. Both orderings
//! accumulate per sample in the same index order, so they agree to
//! machine precision (bit-for-bit without the `simd` feature).
//!
//! Every noisy physical gate of the Fig. 2 circuit is accounted for with
//! the same fused channels the density-matrix backend applies
//! ([`qsim::simulator::GateNoise`]), so the engine tracks the
//! paper-literal noisy [`CircuitEngine`] to ≲1e-12 — with no
//! `2n+1`-qubit density simulation per sample.
//!
//! Exact mode reproduces the branching backend's semantics to ≲1e-12;
//! Sampled mode draws the same binomial statistics from the exact
//! deviation through [`qsim::sampling`], with per-measurement seeds shared
//! across all engines. `Auto` engine selection resolves the
//! execution-mode split: batched analytic for Exact/Sampled, density for
//! Noisy.

use crate::ansatz::AnsatzParams;
use crate::cache::ByteBounded;
use crate::circuit::build_sample_circuit;
use crate::config::{EngineKind, ExecutionMode, QuorumConfig};
use crate::ensemble::{derive_seed, EnsembleGroup};
use crate::error::QuorumError;
use qdata::{Dataset, SamplePanel};
use qsim::channel::{ChannelProgram, SwapTestMpo};
use qsim::circuit::{Circuit, Operation};
use qsim::complex::C64;
use qsim::density::{permute_cx_columns, ry_conjugate_columns, DensityMatrix};
use qsim::matrix::{CMatrix, GEMM_COL_BLOCK};
use qsim::parallel::map_indexed_with;
use qsim::simulator::{
    Backend, DensityMatrixBackend, GateNoise, OutcomeDistribution, StatevectorBackend,
};
use qsim::stateprep::{prepare_real_amplitudes, PrepSkeleton, PrepStep};
use qsim::{transpile, NoiseModel};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Branches lighter than this are dropped, mirroring the branching
/// statevector backend's prune threshold.
const BRANCH_PRUNE: f64 = 1e-14;

/// Evaluates SWAP-test deviations for every sample of a dataset at one
/// compression level, under one ensemble group's random draw.
///
/// Implementations must be `Send + Sync`: the detector fans groups out
/// across threads and shares one engine reference.
pub trait ScoringEngine: Send + Sync {
    /// Short human-readable engine name.
    fn name(&self) -> &'static str;

    /// The deviation `P(ancilla = 1)` of every sample in `normalized`.
    ///
    /// # Errors
    ///
    /// Propagates embedding and simulation failures; engines reject
    /// execution modes they cannot honour.
    fn deviations(
        &self,
        group: &EnsembleGroup,
        normalized: &Dataset,
        config: &QuorumConfig,
        reset_count: usize,
    ) -> Result<Vec<f64>, QuorumError>;

    /// Deviations at every compression level in `levels`, in order —
    /// the granularity at which a full group pass actually runs.
    ///
    /// The default implementation evaluates level by level through
    /// [`ScoringEngine::deviations`]. The batched engine overrides it to
    /// share everything that is level-independent (sample packing and the
    /// encoder product) across the whole sweep.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ScoringEngine::deviations`].
    fn deviations_all_levels(
        &self,
        group: &EnsembleGroup,
        normalized: &Dataset,
        config: &QuorumConfig,
        levels: &[usize],
    ) -> Result<Vec<Vec<f64>>, QuorumError> {
        levels
            .iter()
            .map(|&reset_count| self.deviations(group, normalized, config, reset_count))
            .collect()
    }

    /// [`ScoringEngine::deviations_all_levels`] over a borrowed flat
    /// [`SamplePanel`] — the zero-copy entry the serving runtime feeds
    /// from its pooled request buffers.
    ///
    /// The default implementation copies the panel into a [`Dataset`] and
    /// delegates, so every engine serves panels correctly; the batched
    /// engines override it to score the borrowed rows directly (same
    /// per-element arithmetic and iteration order, hence bit-identical to
    /// the [`Dataset`] path on the same values).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ScoringEngine::deviations_all_levels`], plus
    /// [`QuorumError::InvalidData`] for panels a [`Dataset`] would reject
    /// (empty, or non-finite values).
    fn deviations_all_levels_panel(
        &self,
        group: &EnsembleGroup,
        panel: &SamplePanel<'_>,
        config: &QuorumConfig,
        levels: &[usize],
    ) -> Result<Vec<Vec<f64>>, QuorumError> {
        let ds = panel
            .to_dataset("panel")
            .map_err(|e| QuorumError::InvalidData(e.to_string()))?;
        self.deviations_all_levels(group, &ds, config, levels)
    }
}

/// Resolves the configured [`EngineKind`] to a concrete engine.
///
/// # Errors
///
/// Returns [`QuorumError::InvalidConfig`] for the analytic engine under
/// noisy execution (the combination [`QuorumConfig::validate`] also
/// rejects).
pub fn resolve(config: &QuorumConfig) -> Result<&'static dyn ScoringEngine, QuorumError> {
    static CIRCUIT: CircuitEngine = CircuitEngine;
    static ANALYTIC: AnalyticEngine = AnalyticEngine;
    static BATCHED: BatchedAnalyticEngine = BatchedAnalyticEngine;
    static DENSITY: DensityEngine = DensityEngine;
    static DENSITY_STRUCTURED: StructuredDensityEngine = StructuredDensityEngine;
    static DENSITY_SAMPLE: SampleDensityEngine = SampleDensityEngine;
    match config.effective_engine() {
        EngineKind::Circuit => Ok(&CIRCUIT),
        EngineKind::Analytic => {
            ensure_pure_state(config)?;
            Ok(&ANALYTIC)
        }
        EngineKind::Batched => {
            ensure_pure_state(config)?;
            Ok(&BATCHED)
        }
        EngineKind::Density => {
            ensure_noisy(config)?;
            Ok(&DENSITY)
        }
        EngineKind::DensityStructured => {
            ensure_noisy_mode(config)?;
            Ok(&DENSITY_STRUCTURED)
        }
        EngineKind::DensitySample => {
            ensure_noisy(config)?;
            Ok(&DENSITY_SAMPLE)
        }
        // `effective_engine` never returns Auto, but EngineKind is
        // non-exhaustive.
        _ => unreachable!("Auto resolves to a concrete engine"),
    }
}

/// The single guard (and error message) for the analytic engine's
/// pure-state-only limitation.
fn ensure_pure_state(config: &QuorumConfig) -> Result<(), QuorumError> {
    if matches!(config.execution, ExecutionMode::Noisy { .. }) {
        return Err(QuorumError::InvalidConfig(
            "the analytic engine is pure-state only; noisy execution needs the density or circuit engine"
                .into(),
        ));
    }
    Ok(())
}

/// The widest data register the density engine supports: the SWAP-test
/// functional is derived on the full `2n + 1`-qubit observable, which must
/// stay within the mixed-state simulator's 13-qubit limit.
const MAX_DENSITY_DATA_QUBITS: usize = 6;

/// The mode half of the density engines' guard: without a noise model
/// the analytic pure-state engines are strictly better. Shared by the
/// dense and structured engines (and the batch preparation both reuse).
fn ensure_noisy_mode(config: &QuorumConfig) -> Result<(), QuorumError> {
    if !matches!(config.execution, ExecutionMode::Noisy { .. }) {
        return Err(QuorumError::InvalidConfig(
            "the density engine scores under a noise model; Exact/Sampled execution uses the analytic engines"
                .into(),
        ));
    }
    Ok(())
}

/// The full guard for the **dense** density engines: Noisy mode plus the
/// register-width limit — the dense path materialises `16^n` fused
/// objects (the superoperators and the `2n + 1`-qubit SWAP-test
/// observable), so oversized registers are rejected up front rather than
/// on a huge allocation. The structured engine has no such objects and
/// checks only the mode ([`ensure_noisy_mode`]).
fn ensure_noisy(config: &QuorumConfig) -> Result<(), QuorumError> {
    ensure_noisy_mode(config)?;
    if config.data_qubits > MAX_DENSITY_DATA_QUBITS {
        return Err(QuorumError::InvalidConfig(format!(
            "dense noisy scoring supports at most {MAX_DENSITY_DATA_QUBITS} data qubits (the \
             {}-qubit SWAP-test observable would exceed the mixed-state simulator's memory \
             budget); wider registers run on the structured density engine",
            2 * config.data_qubits + 1
        )));
    }
    Ok(())
}

/// Deterministic per-measurement seed, shared by every engine so sampled
/// runs stay comparable across engine switches. Public for the serving
/// runtime, which scores coalesced cross-request batches with shots
/// stripped and re-applies the binomial draw per sample under a stable
/// request-assigned sample id — using this exact derivation so served
/// draws match what an in-process run at the same index would produce.
/// `sample` contributes its low 32 bits; callers with wider ids should
/// mask (draw streams repeat after 2^32 samples, which only recycles
/// measurement randomness, never data).
pub fn shot_seed(
    config: &QuorumConfig,
    group_index: usize,
    reset_count: usize,
    sample: usize,
) -> u64 {
    derive_seed(
        config.seed ^ 0x5107,
        (group_index as u64) << 40 | (reset_count as u64) << 32 | sample as u64,
    )
}

/// The shared guard for analytic reset counts: at least one qubit must be
/// reset and at least one kept.
fn ensure_reset_range(reset_count: usize, num_qubits: usize) -> Result<(), QuorumError> {
    if reset_count == 0 || reset_count >= num_qubits {
        return Err(QuorumError::InvalidConfig(format!(
            "reset count {reset_count} must lie in 1..{num_qubits}"
        )));
    }
    Ok(())
}

/// Binomial draw of `shots` ancilla measurements from an exact deviation,
/// through the same cumulative-distribution sampler the circuit backends
/// use — so all engines produce bit-identical sampled statistics from the
/// same seed. Public for the serving runtime, which applies the draw
/// after scoring a coalesced batch exactly (see [`shot_seed`]).
pub fn sampled_deviation(exact: f64, shots: u64, seed: u64) -> f64 {
    use rand::SeedableRng;
    let mut probs = HashMap::new();
    probs.insert(0u64, 1.0 - exact);
    probs.insert(1u64, exact);
    let dist = OutcomeDistribution::from_probs(1, probs);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    dist.sample(shots, &mut rng).marginal_one(0)
}

/// The paper-literal engine: builds and simulates the full `2n + 1`-qubit
/// Fig. 2 circuit per sample on the branching statevector backend (or the
/// density-matrix backend for noisy runs). Kept as the cross-check oracle
/// and as the only engine able to run noise models.
#[derive(Debug, Clone, Copy, Default)]
pub struct CircuitEngine;

impl ScoringEngine for CircuitEngine {
    fn name(&self) -> &'static str {
        "circuit"
    }

    fn deviations(
        &self,
        group: &EnsembleGroup,
        normalized: &Dataset,
        config: &QuorumConfig,
        reset_count: usize,
    ) -> Result<Vec<f64>, QuorumError> {
        let sv_backend = StatevectorBackend::new();
        let dm_backend = match &config.execution {
            ExecutionMode::Noisy { noise, .. } => {
                Some(DensityMatrixBackend::with_noise(noise.clone()))
            }
            _ => None,
        };
        let mut out = Vec::with_capacity(normalized.num_samples());
        for (i, row) in normalized.rows().iter().enumerate() {
            let values = group.features().project(row);
            let circ = build_sample_circuit(&values, group.ansatz(), reset_count)?;
            let seed = shot_seed(config, group.index(), reset_count, i);
            let p = match &config.execution {
                ExecutionMode::Exact => sv_backend.probabilities(&circ)?.marginal_one(0),
                ExecutionMode::Sampled { shots } => {
                    sv_backend.run(&circ, *shots, seed)?.marginal_one(0)
                }
                ExecutionMode::Noisy { shots, .. } => {
                    let backend = dm_backend.as_ref().expect("constructed above");
                    match shots {
                        None => backend.probabilities(&circ)?.marginal_one(0),
                        Some(s) => backend.run(&circ, *s, seed)?.marginal_one(0),
                    }
                }
            };
            out.push(p);
        }
        Ok(out)
    }
}

/// The analytic reduced-register engine: per-group fused unitaries and
/// `n`-qubit pure-state algebra (see the module docs for the math).
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyticEngine;

impl AnalyticEngine {
    /// `P(ancilla = 1)` for one embedded sample `psi` (unit-norm, length
    /// `2^n`) under a fused `encoder` with `reset_count` top qubits reset
    /// between it and its inverse.
    ///
    /// The decoder never has to be applied: with `D = E†`,
    /// `⟨ψ|D|χ_k⟩ = ⟨Eψ|χ_k⟩ = ⟨φ|χ_k⟩`, and `χ_k` is just the `k`-th
    /// block of `φ` renormalised and relocated to the low slots — so each
    /// branch overlap is one `2^(n−r)`-element dot product over `φ`.
    fn deviation_of(psi: &[C64], encoder: &CMatrix, num_qubits: usize, reset_count: usize) -> f64 {
        let kept = num_qubits - reset_count;
        let low_dim = 1usize << kept;
        let branches = 1usize << reset_count;

        // Encoder on register A.
        let phi = encoder.mul_vec(psi);

        // Expand the reset into ≤ 2^r weighted pure branches. Outcome `k`
        // of the reset qubits keeps the block phi[k·2^kept ..],
        // renormalised and relocated to the reset-to-zero (low) block.
        let mut trace_overlap = 0.0;
        for k in 0..branches {
            let block = &phi[k * low_dim..(k + 1) * low_dim];
            let weight: f64 = block.iter().map(|a| a.norm_sqr()).sum();
            if weight <= BRANCH_PRUNE {
                continue;
            }
            // overlap = ⟨φ|χ_k⟩ with χ_k = block/√w_k on the low slots;
            // the branch term w_k·|overlap|² cancels the 1/w_k from the
            // renormalisation, leaving |⟨φ[..2^kept]|block⟩|² outright.
            let overlap: C64 = phi[..low_dim]
                .iter()
                .zip(block)
                .map(|(a, b)| a.conj() * *b)
                .sum();
            trace_overlap += overlap.norm_sqr();
        }
        ((1.0 - trace_overlap) / 2.0).clamp(0.0, 0.5)
    }
}

impl ScoringEngine for AnalyticEngine {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn deviations(
        &self,
        group: &EnsembleGroup,
        normalized: &Dataset,
        config: &QuorumConfig,
        reset_count: usize,
    ) -> Result<Vec<f64>, QuorumError> {
        ensure_pure_state(config)?;
        let n = group.ansatz().num_qubits();
        ensure_reset_range(reset_count, n)?;
        // Fuse the group's encoder once per call; every sample reuses the
        // matrix. (The batched engine goes further and reuses one fusion
        // across all compression levels via the group's cache.) The
        // decoder is the encoder's exact adjoint and cancels out of the
        // overlap (see `deviation_of`), so it is never materialised.
        let encoder = group.ansatz().encoder().to_unitary()?;

        let mut out = Vec::with_capacity(normalized.num_samples());
        for (i, row) in normalized.rows().iter().enumerate() {
            let values = group.features().project(row);
            let amps = crate::embed::amplitudes_with_overflow(&values, n)?;
            // Inject amplitudes directly (the circuit path's state prep
            // normalises, so mirror it here).
            let norm: f64 = amps.iter().map(|a| a * a).sum::<f64>().sqrt();
            let psi: Vec<C64> = amps.iter().map(|&a| C64::from_real(a / norm)).collect();

            let exact = Self::deviation_of(&psi, &encoder, n, reset_count);
            let p = match &config.execution {
                ExecutionMode::Sampled { shots } => {
                    // Binomial draw from the exact deviation, through the
                    // same distribution sampler the backends use.
                    let seed = shot_seed(config, group.index(), reset_count, i);
                    sampled_deviation(exact, *shots, seed)
                }
                _ => exact,
            };
            out.push(p);
        }
        Ok(out)
    }
}

/// One GEMM per (group, level) is far too small at flagship scale
/// (`8×8 · 8×96` encoder, `64×64 · 64×96` superoperator products) to
/// amortise thread spawn, so the batched engines only thread the product
/// when a single one is genuinely large (roughly `n ≥ 7` for the
/// pure-state path, `n ≥ 4` for the density path, at realistic batch
/// sizes).
const GEMM_PARALLEL_WORK: usize = 1 << 21;

/// Worker threads for one batched GEMM (encoder or superoperator), from
/// the configured thread count
/// and the product's `dim² × samples` work estimate. Multi-group
/// ensembles keep the GEMM sequential regardless of size: the detector
/// already fans groups out across cores, and threading inside each
/// worker would multiply the two levels of parallelism into
/// oversubscription. Thread counts never change the results either way
/// (panel outputs are position-fixed).
fn gemm_threads(config: &QuorumConfig, dim: usize, samples: usize) -> usize {
    if config.ensemble_groups > 1 || dim * dim * samples < GEMM_PARALLEL_WORK {
        1
    } else {
        config.effective_threads()
    }
}

/// The batched analytic engine: the whole group's samples are packed
/// column-wise into one `2^n × S` matrix, the cached fused encoder is
/// applied as a single blocked matrix–matrix product, and the reset
/// branches expand into batched column dot products — one call emits the
/// entire deviation vector. The default for Exact and Sampled execution.
///
/// Produces the same numbers as [`AnalyticEngine`] (the per-column
/// accumulation order of the GEMM matches the per-sample matvec), but
/// amortises the encoder application across samples and the encoder
/// *fusion* across compression levels via
/// [`EnsembleGroup::fused_encoder`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchedAnalyticEngine;

impl BatchedAnalyticEngine {
    /// Packs every sample's amplitude embedding into the columns of a
    /// `2^n × S` matrix, unit-normalising each column the way the circuit
    /// path's state preparation does. Projection and embedding run
    /// through reusable scratch buffers — no per-sample allocations.
    fn pack_samples<'a>(
        group: &EnsembleGroup,
        rows: impl Iterator<Item = &'a [f64]>,
        samples: usize,
        num_qubits: usize,
    ) -> Result<CMatrix, QuorumError> {
        let dim = 1usize << num_qubits;
        let mut psi = CMatrix::zeros(dim, samples);
        let mut values = Vec::with_capacity(group.features().len());
        let mut amps = vec![0.0_f64; dim];
        for (col, row) in rows.enumerate() {
            group.features().project_into(row, &mut values);
            crate::embed::amplitudes_with_overflow_into(&values, num_qubits, &mut amps)?;
            let norm: f64 = amps.iter().map(|a| a * a).sum::<f64>().sqrt();
            for (i, &a) in amps.iter().enumerate() {
                psi[(i, col)] = C64::from_real(a / norm);
            }
        }
        Ok(psi)
    }

    /// The level-independent half of a group pass: pack the batch and
    /// push it through the cached fused encoder in one GEMM, yielding
    /// `Φ = E·Ψ` with one encoded sample per column.
    fn encode_batch<'a>(
        group: &EnsembleGroup,
        rows: impl Iterator<Item = &'a [f64]>,
        samples: usize,
        config: &QuorumConfig,
    ) -> Result<CMatrix, QuorumError> {
        let n = group.ansatz().num_qubits();
        let encoder = group.fused_encoder()?;
        let psi = Self::pack_samples(group, rows, samples, n)?;
        let threads = gemm_threads(config, 1 << n, psi.cols());
        Ok(encoder.matmul_threaded(&psi, threads)?)
    }

    /// Splits the encoded matrix `Φ` into separate re/im `f64` planes
    /// (row-major, one repack per group pass) so the branch sweeps run on
    /// pure `f64` lane streams instead of interleaved `C64` rows.
    fn split_phi(phi: &CMatrix) -> (Vec<f64>, Vec<f64>) {
        let mut re = Vec::with_capacity(phi.rows() * phi.cols());
        let mut im = Vec::with_capacity(phi.rows() * phi.cols());
        for &z in phi.as_slice() {
            re.push(z.re);
            im.push(z.im);
        }
        (re, im)
    }

    /// `P(ancilla = 1)` for every column of the encoded matrix `Φ = E·Ψ`,
    /// given as split re/im planes.
    ///
    /// The per-sample branch expansion (see [`AnalyticEngine`]) becomes
    /// row-wise sweeps over `Φ`: for branch `k` and kept index `i`, row
    /// `k·2^kept + i` holds every sample's `k`-th block entry contiguously,
    /// so branch weights and overlaps accumulate for all `S` samples in
    /// one lane pass per row through the split-complex
    /// [`qsim::kernel::branch_sweep_lanes`] kernel (runtime-AVX-recompiled
    /// like the GEMM tiles) — same per-sample summation order and
    /// per-element expressions as the matvec path, hence bit-identical
    /// deviations.
    fn deviations_of(
        phi_re: &[f64],
        phi_im: &[f64],
        samples: usize,
        num_qubits: usize,
        reset_count: usize,
    ) -> Vec<f64> {
        let kept = num_qubits - reset_count;
        let low_dim = 1usize << kept;
        let branches = 1usize << reset_count;

        let mut trace_overlap = vec![0.0; samples];
        let mut over_re = vec![0.0; samples];
        let mut over_im = vec![0.0; samples];
        let mut weight = vec![0.0; samples];
        for k in 0..branches {
            over_re.fill(0.0);
            over_im.fill(0.0);
            weight.fill(0.0);
            for i in 0..low_dim {
                let low = i * samples;
                let top = (k * low_dim + i) * samples;
                qsim::kernel::branch_sweep_lanes(
                    &phi_re[low..low + samples],
                    &phi_im[low..low + samples],
                    &phi_re[top..top + samples],
                    &phi_im[top..top + samples],
                    &mut weight,
                    &mut over_re,
                    &mut over_im,
                );
            }
            for (((t, &or), &oi), &w) in trace_overlap
                .iter_mut()
                .zip(&over_re)
                .zip(&over_im)
                .zip(&weight)
            {
                // Mirror the per-sample path's branch pruning exactly.
                if w > BRANCH_PRUNE {
                    *t += or * or + oi * oi;
                }
            }
        }
        trace_overlap
            .iter()
            .map(|t| ((1.0 - t) / 2.0).clamp(0.0, 0.5))
            .collect()
    }
}

impl ScoringEngine for BatchedAnalyticEngine {
    fn name(&self) -> &'static str {
        "batched"
    }

    fn deviations(
        &self,
        group: &EnsembleGroup,
        normalized: &Dataset,
        config: &QuorumConfig,
        reset_count: usize,
    ) -> Result<Vec<f64>, QuorumError> {
        let mut all = self.deviations_all_levels(group, normalized, config, &[reset_count])?;
        all.pop()
            .ok_or_else(|| QuorumError::Internal("deviations_all_levels returned no levels".into()))
    }

    fn deviations_all_levels(
        &self,
        group: &EnsembleGroup,
        normalized: &Dataset,
        config: &QuorumConfig,
        levels: &[usize],
    ) -> Result<Vec<Vec<f64>>, QuorumError> {
        self.deviations_all_levels_rows(
            group,
            normalized.rows().iter().map(Vec::as_slice),
            normalized.num_samples(),
            config,
            levels,
        )
    }

    fn deviations_all_levels_panel(
        &self,
        group: &EnsembleGroup,
        panel: &SamplePanel<'_>,
        config: &QuorumConfig,
        levels: &[usize],
    ) -> Result<Vec<Vec<f64>>, QuorumError> {
        self.deviations_all_levels_rows(group, panel.rows(), panel.num_samples(), config, levels)
    }
}

impl BatchedAnalyticEngine {
    /// The shared body of both `deviations_all_levels` entry points,
    /// generic over the row source.
    fn deviations_all_levels_rows<'a>(
        &self,
        group: &EnsembleGroup,
        rows: impl Iterator<Item = &'a [f64]>,
        samples: usize,
        config: &QuorumConfig,
        levels: &[usize],
    ) -> Result<Vec<Vec<f64>>, QuorumError> {
        ensure_pure_state(config)?;
        let n = group.ansatz().num_qubits();
        for &reset_count in levels {
            ensure_reset_range(reset_count, n)?;
        }

        // Everything level-independent happens once per group: packing,
        // fusion (cached across calls too), the encoder GEMM, and the
        // split-complex repack the branch sweeps run on.
        let phi = Self::encode_batch(group, rows, samples, config)?;
        let samples = phi.cols();
        let (phi_re, phi_im) = Self::split_phi(&phi);

        levels
            .iter()
            .map(|&reset_count| {
                let exact = Self::deviations_of(&phi_re, &phi_im, samples, n, reset_count);
                Ok(match &config.execution {
                    ExecutionMode::Sampled { shots } => exact
                        .iter()
                        .enumerate()
                        .map(|(i, &e)| {
                            let seed = shot_seed(config, group.index(), reset_count, i);
                            sampled_deviation(e, *shots, seed)
                        })
                        .collect(),
                    _ => exact,
                })
            })
            .collect()
    }
}

/// Builds the fused noisy superoperator of one group's bottlenecked
/// autoencoder segment — encoder gates with their per-gate noise channels,
/// the `reset_count` reset Kraus channels, and the decoder — as a
/// `4^n × 4^n` matrix over row-major `vec(ρ)`.
///
/// Columns are extracted by evolving the matrix-unit basis `E_ij` through
/// the *lowered* gate list with exactly the kernels the density-matrix
/// backend uses ([`GateNoise::apply_after_gate`]), so applying the result
/// to `vec(ρ)` reproduces the backend's per-gate evolution to machine
/// precision. Called through the per-group cache
/// ([`EnsembleGroup::fused_noisy_superop`]); one build covers every sample.
///
/// # Errors
///
/// Propagates simulation failures (the segment is reset-plus-unitary, so
/// this is effectively infallible for valid ansätze).
pub(crate) fn build_noisy_superop(
    ansatz: &AnsatzParams,
    noise: &NoiseModel,
    reset_count: usize,
) -> Result<CMatrix, QuorumError> {
    let n = ansatz.num_qubits();
    let mut circ = Circuit::new(n);
    circ.compose(&ansatz.encoder(), 0)
        .map_err(QuorumError::Simulation)?;
    for q in (n - reset_count)..n {
        circ.reset(q);
    }
    circ.compose(&ansatz.decoder(), 0)
        .map_err(QuorumError::Simulation)?;
    let lowered = transpile::decompose_multiqubit(&circ);
    let gate_noise = GateNoise::from_model(noise);

    let dim = 1usize << n;
    let mut superop = CMatrix::zeros(dim * dim, dim * dim);
    for col in 0..dim * dim {
        let mut unit = CMatrix::zeros(dim, dim);
        unit[(col / dim, col % dim)] = C64::ONE;
        let mut rho = DensityMatrix::from_cmatrix(&unit).map_err(QuorumError::Simulation)?;
        evolve_noisy(&mut rho, &lowered, &gate_noise)?;
        for (row, &value) in rho.as_slice().iter().enumerate() {
            superop[(row, col)] = value;
        }
    }
    Ok(superop)
}

/// Lowers the same bottlenecked autoencoder segment as
/// [`build_noisy_superop`] — encoder, `reset_count` resets, decoder —
/// into a structured per-gate [`ChannelProgram`]
/// ([`EnsembleGroup::channel_program`]), instead of fusing it dense: the
/// program is `O(gates)` to build and `O(ops · 4^n)` per sample to
/// apply, never materialising the `16^n` superoperator, which is what
/// unlocks registers past the dense engine's width cap.
///
/// # Errors
///
/// Propagates lowering failures (the segment is reset-plus-unitary over
/// 1q/CX gates, so this is effectively infallible for valid ansätze).
pub(crate) fn build_channel_program(
    ansatz: &AnsatzParams,
    noise: &NoiseModel,
    reset_count: usize,
) -> Result<ChannelProgram, QuorumError> {
    let n = ansatz.num_qubits();
    let mut circ = Circuit::new(n);
    circ.compose(&ansatz.encoder(), 0)
        .map_err(QuorumError::Simulation)?;
    for q in (n - reset_count)..n {
        circ.reset(q);
    }
    circ.compose(&ansatz.decoder(), 0)
        .map_err(QuorumError::Simulation)?;
    let lowered = transpile::decompose_multiqubit(&circ);
    ChannelProgram::from_lowered(&lowered, &GateNoise::from_model(noise))
        .map_err(QuorumError::Simulation)
}

/// Evolves a density operator forward through a lowered instruction list,
/// charging the fused per-gate noise after every gate — the shared
/// Schrödinger-picture walk behind the superoperator builder and the
/// per-sample noisy state preparation.
fn evolve_noisy(
    rho: &mut DensityMatrix,
    lowered: &Circuit,
    gate_noise: &GateNoise,
) -> Result<(), QuorumError> {
    for instr in lowered.instructions() {
        match &instr.op {
            Operation::Gate(g) => {
                rho.apply_gate(*g, &instr.qubits)
                    .map_err(QuorumError::Simulation)?;
                gate_noise
                    .apply_after_gate(rho, g.num_qubits(), &instr.qubits)
                    .map_err(QuorumError::Simulation)?;
            }
            Operation::Reset => {
                rho.reset(instr.qubits[0])
                    .map_err(QuorumError::Simulation)?;
            }
            Operation::Barrier => {}
            _ => {
                return Err(QuorumError::InvalidConfig(
                    "unsupported operation inside an autoencoder segment".into(),
                ));
            }
        }
    }
    Ok(())
}

/// The sample's noisy amplitude preparation on `n` qubits: the same
/// Möttönen circuit the Fig. 2 layout applies to registers A and B,
/// lowered and evolved with per-gate noise. The result serves as both
/// `ρ_B` and register A's input.
fn noisy_prepared_state(
    amps: &[f64],
    num_qubits: usize,
    gate_noise: &GateNoise,
) -> Result<DensityMatrix, QuorumError> {
    let prep = prepare_real_amplitudes(num_qubits, amps).map_err(QuorumError::Simulation)?;
    let lowered = transpile::decompose_multiqubit(&prep);
    let mut rho = DensityMatrix::new(num_qubits).map_err(QuorumError::Simulation)?;
    evolve_noisy(&mut rho, &lowered, gate_noise)?;
    Ok(rho)
}

/// Builds the SWAP-test readout functional `W` for `n`-qubit registers
/// under `noise`: `P(ancilla = 1) = vec(ρ_A)ᵀ · W · vec(ρ_B)` (before
/// readout confusion), where the probability includes every noisy lowered
/// gate of the CSWAP network.
///
/// Derivation: the POVM element `Π₁ = |1⟩⟨1|_anc ⊗ I` is pulled backwards
/// through the lowered SWAP-test gates in the Heisenberg picture — gate
/// adjoints via inverse gates, channel adjoints via
/// [`GateNoise::apply_adjoint_after_gate`] — and the resulting observable
/// is restricted to the ancilla's initial `|0⟩` block and reindexed into
/// the bilinear form over `(vec(ρ_A), vec(ρ_B))`. The ancilla's terminal
/// dephasing is a no-op on the diagonal `Π₁` and drops out.
fn build_swap_test_functional(n: usize, noise: &NoiseModel) -> Result<CMatrix, QuorumError> {
    let gate_noise = GateNoise::from_model(noise);
    let ancilla = 2 * n;
    let mut circ = Circuit::new(2 * n + 1);
    circ.h(ancilla);
    for q in 0..n {
        circ.cswap(ancilla, q, n + q);
    }
    circ.h(ancilla);
    let lowered = transpile::decompose_multiqubit(&circ);

    let dim = 1usize << (2 * n + 1);
    let mut pi1 = CMatrix::zeros(dim, dim);
    for i in (0..dim).filter(|i| i >> ancilla & 1 == 1) {
        pi1[(i, i)] = C64::ONE;
    }
    let mut obs = DensityMatrix::from_cmatrix(&pi1).map_err(QuorumError::Simulation)?;
    for instr in lowered.instructions().iter().rev() {
        match &instr.op {
            Operation::Gate(g) => {
                gate_noise
                    .apply_adjoint_after_gate(&mut obs, g.num_qubits(), &instr.qubits)
                    .map_err(QuorumError::Simulation)?;
                obs.apply_gate(g.inverse(), &instr.qubits)
                    .map_err(QuorumError::Simulation)?;
            }
            Operation::Barrier => {}
            _ => {
                return Err(QuorumError::InvalidConfig(
                    "the SWAP-test network must be unitary".into(),
                ));
            }
        }
    }

    // Restrict to ancilla |0⟩ (joint index u = b·2ⁿ + a, ancilla bit 0 for
    // u < 4ⁿ) and reshuffle Tr[obs · (ρ_A ⊗ ρ_B)] = Σ obs[u,v]·ρ_A[vₐ,uₐ]·
    // ρ_B[v_b,u_b] into W over row-major vec indices.
    let sub = 1usize << n;
    let obs_mat = obs.to_cmatrix();
    let mut w = CMatrix::zeros(sub * sub, sub * sub);
    for va in 0..sub {
        for ua in 0..sub {
            for vb in 0..sub {
                for ub in 0..sub {
                    w[(va * sub + ua, vb * sub + ub)] = obs_mat[(ub * sub + ua, vb * sub + va)];
                }
            }
        }
    }
    Ok(w)
}

/// Bytes the global SWAP-test functional cache may retain — a backstop
/// for pathological many-model or wide-register workloads, far above
/// anything the pipeline or test suites create (a flagship n = 3
/// functional is ~65 KiB).
const SWAP_FUNCTIONAL_CACHE_BYTES: usize = 64 << 20;

/// The process-wide SWAP-test functional store: `W` depends only on the
/// register width and the noise model, so every group, sample and
/// serving request of the process shares one instance per key. The
/// [`ByteBounded`] store recovers from mutex poisoning (a panicked
/// scorer must not wedge a resident server) and evicts oldest-first on
/// overflow instead of flushing the hot entries.
static SWAP_FUNCTIONAL_CACHE: ByteBounded<(usize, NoiseModel), CMatrix> = ByteBounded::new();

/// The globally cached SWAP-test readout functional (see
/// [`SWAP_FUNCTIONAL_CACHE`]). Retention is bounded by
/// [`SWAP_FUNCTIONAL_CACHE_BYTES`]; oversized functionals are returned
/// uncached. The build runs outside the cache lock.
fn swap_test_functional(n: usize, noise: &NoiseModel) -> Result<Arc<CMatrix>, QuorumError> {
    let functional_bytes = |w: &CMatrix| w.rows() * w.cols() * std::mem::size_of::<C64>();
    SWAP_FUNCTIONAL_CACHE.get_or_try_build(
        &(n, noise.clone()),
        SWAP_FUNCTIONAL_CACHE_BYTES,
        functional_bytes,
        || build_swap_test_functional(n, noise),
    )
}

/// Bytes the fused per-gate channel cache may retain — [`GateNoise`] is a
/// few fixed-size superoperator arrays (~1 KiB), so this admits hundreds
/// of distinct noise models before evicting.
const GATE_NOISE_CACHE_BYTES: usize = 1 << 20;

/// The process-wide fused per-gate channel store: [`GateNoise::from_model`]
/// costs microseconds of Kraus fusion per call, which a steady-state
/// scoring loop would otherwise pay twice per group pass (preparation and
/// scoring). The fused result depends only on the noise model, so every
/// group and request shares one instance per model.
static GATE_NOISE_CACHE: ByteBounded<NoiseModel, GateNoise> = ByteBounded::new();

/// The globally cached fused per-gate channels for `noise` (see
/// [`GATE_NOISE_CACHE`]).
fn cached_gate_noise(noise: &NoiseModel) -> Arc<GateNoise> {
    GATE_NOISE_CACHE
        .get_or_try_build(
            noise,
            GATE_NOISE_CACHE_BYTES,
            |_| std::mem::size_of::<GateNoise>(),
            || Ok::<_, std::convert::Infallible>(GateNoise::from_model(noise)),
        )
        .expect("building GateNoise is infallible")
}

/// Bytes the prep-skeleton cache may retain — a skeleton is `O(2^n)`
/// steps, so this admits every register width the engines support.
const PREP_SKELETON_CACHE_BYTES: usize = 1 << 20;

/// The process-wide Möttönen skeleton store: the gate skeleton depends
/// only on the register width, and rebuilding it per batch is the kind of
/// small steady-state allocation the serving hot path must not make.
static PREP_SKELETON_CACHE: ByteBounded<usize, PrepSkeleton> = ByteBounded::new();

/// The globally cached preparation skeleton for `num_qubits` (see
/// [`PREP_SKELETON_CACHE`]).
fn cached_prep_skeleton(num_qubits: usize) -> Arc<PrepSkeleton> {
    PREP_SKELETON_CACHE
        .get_or_try_build(
            &num_qubits,
            PREP_SKELETON_CACHE_BYTES,
            |s| std::mem::size_of_val(s.steps()),
            || Ok::<_, std::convert::Infallible>(PrepSkeleton::new(num_qubits)),
        )
        .expect("building PrepSkeleton is infallible")
}

/// The batched analytic density-matrix noise engine: `n`-qubit mixed-state
/// algebra with all sample-independent structure fused and cached, and the
/// whole group's samples pushed through each level's superoperator (and
/// the readout functional) as blocked `4^n × S` GEMMs on the SIMD kernel
/// seam. State preparation itself runs in **lockstep** — all samples
/// evolve through the shared Möttönen skeleton together, the shared
/// gates and channels hitting the whole panel per step (see
/// [`DensityEngine::prepare_batch`]). The default
/// for Noisy execution (see the module docs for the math);
/// [`SampleDensityEngine`] keeps the one-matvec-per-sample ordering (and
/// the per-sample gate-walk preparation) as the in-family oracle and the
/// paper-literal [`CircuitEngine`] remains the gate-level one.
#[derive(Debug, Clone, Copy, Default)]
pub struct DensityEngine;

/// The sample-independent structure of one noisy group pass, fetched or
/// fused once and shared by both density engines: per-gate channels, the
/// readout functional, one superoperator per level, and the readout
/// confusion probability.
struct NoisyPassContext {
    gate_noise: Arc<GateNoise>,
    w: Arc<CMatrix>,
    superops: Vec<Arc<CMatrix>>,
    readout: f64,
}

impl NoisyPassContext {
    fn prepare(
        group: &EnsembleGroup,
        config: &QuorumConfig,
        levels: &[usize],
    ) -> Result<(Self, Option<u64>), QuorumError> {
        ensure_noisy(config)?;
        let (noise, shots) = match &config.execution {
            ExecutionMode::Noisy { noise, shots } => (noise, *shots),
            _ => unreachable!("ensure_noisy admits only Noisy execution"),
        };
        let n = group.ansatz().num_qubits();
        for &reset_count in levels {
            ensure_reset_range(reset_count, n)?;
        }
        let gate_noise = cached_gate_noise(noise);
        let w = swap_test_functional(n, noise)?;
        let superops = levels
            .iter()
            .map(|&reset_count| group.fused_noisy_superop(noise, reset_count))
            .collect::<Result<Vec<_>, _>>()?;
        let readout = gate_noise.readout_error();
        Ok((
            NoisyPassContext {
                gate_noise,
                w,
                superops,
                readout,
            },
            shots,
        ))
    }

    /// Readout confusion plus optional shot sampling on one exact raw
    /// overlap — the final step both density engines share per sample.
    fn finish(
        &self,
        raw: C64,
        shots: Option<u64>,
        config: &QuorumConfig,
        group_index: usize,
        reset_count: usize,
        sample: usize,
    ) -> f64 {
        finish_deviation(
            self.readout,
            raw,
            shots,
            config,
            group_index,
            reset_count,
            sample,
        )
    }
}

/// Readout confusion plus optional shot sampling on one exact raw
/// overlap — shared verbatim by every density-family engine (dense,
/// per-sample, structured), so engine switches never change the
/// deviation model.
#[allow(clippy::too_many_arguments)] // a formula, not an interface
fn finish_deviation(
    readout: f64,
    raw: C64,
    shots: Option<u64>,
    config: &QuorumConfig,
    group_index: usize,
    reset_count: usize,
    sample: usize,
) -> f64 {
    let exact = readout + (1.0 - 2.0 * readout) * raw.re;
    match shots {
        Some(k) => {
            let seed = shot_seed(config, group_index, reset_count, sample);
            sampled_deviation(exact, k, seed)
        }
        None => exact,
    }
}

/// Reusable per-worker scratch for one lockstep column block: the RY
/// coefficient lanes (`cos²`, `cos·sin`, `sin²` of the half-angles).
#[derive(Default)]
struct RyCoeffs {
    cc: Vec<f64>,
    cs: Vec<f64>,
    ss: Vec<f64>,
}

/// Reusable buffers for the lockstep batch preparation: the angle matrix
/// and the per-sample embedding scratch.
#[derive(Default)]
struct PrepScratch {
    /// Per-sample angle vectors, angle-major (`num_angles × S`).
    thetas: Vec<f64>,
    values: Vec<f64>,
    amps: Vec<f64>,
    angles: Vec<f64>,
    coeffs: RyCoeffs,
}

/// Reusable buffers for the dense scoring half: the readout image
/// `W·P`, the per-level evolved panel, and the raw column dots.
#[derive(Default)]
struct ScoreScratch {
    wp: CMatrix,
    evolved: CMatrix,
    raw: Vec<C64>,
}

/// The whole per-thread scratch of one dense noisy group pass. Held in a
/// thread-local so a steady-state scoring loop (the serving hot path)
/// stops heap-allocating per batch: after the first panel on a thread,
/// every buffer — the packed `4^n × S` batch included — is reused at
/// capacity. Resident pool workers ([`qsim::parallel::WorkerPool`]) keep
/// their scratch warm across panels, which is half the point of keeping
/// them alive.
#[derive(Default)]
struct DensityScratch {
    prep: PrepScratch,
    packed: CMatrix,
    score: ScoreScratch,
}

thread_local! {
    static DENSITY_SCRATCH: RefCell<DensityScratch> = RefCell::default();
}

impl DensityEngine {
    /// Packs every sample's noisy prepared state into the columns of a
    /// `4^n × S` matrix — column `j` is `vec(ρ_in)` of sample `j` after
    /// the per-gate-noisy Möttönen preparation (one preparation serves as
    /// `ρ_B` and as register A's input alike, since Fig. 2 preps both
    /// identically) — by evolving the whole batch **in lockstep** through
    /// the shared [`PrepSkeleton`]:
    ///
    /// 1. each sample contributes only its angle vector
    ///    ([`PrepSkeleton::angles_for_into`]); every gate *position* is
    ///    shared, so one skeleton walk serves all `S` columns;
    /// 2. the batch starts as `4^n × S` columns of `vec(|0…0⟩⟨0…0|)`;
    ///    each skeleton rotation applies the per-column RY conjugation
    ///    ([`qsim::density::ry_conjugate_columns`] — the only
    ///    sample-dependent operation) and every shared operation — the
    ///    fused 1q noise channel after each rotation, the CX basis
    ///    permutation, the CX depolarizing + relaxation channels — hits
    ///    the **whole panel at once** through the batched channel kernels
    ///    ([`GateNoise::apply_after_gate_columns`],
    ///    [`qsim::density::permute_cx_columns`]), whose sub-block lane
    ///    runs are contiguous across samples (block-diagonal GEMMs on the
    ///    lane seam, AVX-recompiled like the PR 4 ladder);
    /// 3. fixed-width column blocks ([`GEMM_COL_BLOCK`]) evolve
    ///    independently and are distributed across workers via
    ///    [`qsim::parallel::map_indexed_with`] — block boundaries never
    ///    move with the worker count, so results are bit-identical for
    ///    every thread count.
    ///
    /// The per-element arithmetic of every lockstep kernel replicates the
    /// per-sample walk's term for term, so the packed result equals
    /// [`SampleDensityEngine::prepare_batch`]'s to machine precision —
    /// with none of the per-sample circuit construction, lowering, or
    /// strided small-kernel dispatch.
    ///
    /// Public as the batch half of the prep/score seam — streaming callers
    /// can prepare once and score against many frozen ensembles via
    /// [`DensityEngine::score_prepared`], and the bench times the two
    /// stages separately.
    ///
    /// # Errors
    ///
    /// Rejects non-noisy execution modes and propagates embedding and
    /// simulation failures.
    pub fn prepare_batch(
        group: &EnsembleGroup,
        normalized: &Dataset,
        config: &QuorumConfig,
    ) -> Result<CMatrix, QuorumError> {
        let mut packed = CMatrix::zeros(0, 0);
        DENSITY_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            Self::prepare_panel_into(
                group,
                normalized.rows().iter().map(Vec::as_slice),
                normalized.num_samples(),
                config,
                &mut scratch.prep,
                &mut packed,
            )
        })?;
        Ok(packed)
    }

    /// The generic body of [`DensityEngine::prepare_batch`]: consumes the
    /// rows from any contiguous source (a [`Dataset`]'s row vectors or a
    /// flat [`SamplePanel`]) and writes the packed `4^n × S` batch into a
    /// caller-owned matrix through reusable scratch — the zero-allocation
    /// seam the steady-state serving loop runs on. Identical arithmetic
    /// and iteration order to the allocating path.
    fn prepare_panel_into<'a>(
        group: &EnsembleGroup,
        rows: impl Iterator<Item = &'a [f64]>,
        samples: usize,
        config: &QuorumConfig,
        scratch: &mut PrepScratch,
        packed: &mut CMatrix,
    ) -> Result<(), QuorumError> {
        ensure_noisy_mode(config)?;
        let noise = match &config.execution {
            ExecutionMode::Noisy { noise, .. } => noise,
            _ => unreachable!("ensure_noisy_mode admits only Noisy execution"),
        };
        let num_qubits = group.ansatz().num_qubits();
        let gate_noise = cached_gate_noise(noise);
        let dim = 1usize << num_qubits;
        if samples == 0 {
            packed.resize_zeroed(dim * dim, 0);
            return Ok(());
        }

        // Per-sample angle vectors, angle-major: slot `a` of every sample
        // sits contiguously at `thetas[a·S..(a+1)·S]`, so each skeleton
        // rotation reads one lane run per column block.
        let skeleton = cached_prep_skeleton(num_qubits);
        scratch.thetas.clear();
        scratch.thetas.resize(skeleton.num_angles() * samples, 0.0);
        scratch.amps.clear();
        scratch.amps.resize(dim, 0.0);
        for (col, row) in rows.enumerate() {
            group.features().project_into(row, &mut scratch.values);
            crate::embed::amplitudes_with_overflow_into(
                &scratch.values,
                num_qubits,
                &mut scratch.amps,
            )?;
            skeleton
                .angles_for_into(&scratch.amps, &mut scratch.angles)
                .map_err(QuorumError::Simulation)?;
            for (a, &theta) in scratch.angles.iter().enumerate() {
                scratch.thetas[a * samples + col] = theta;
            }
        }

        // Evolve column blocks independently across workers. Every panel
        // kernel is a pure per-column (lane) operation, so any block
        // partition produces value-identical columns; the sequential path
        // therefore evolves one full-width block (no stitch, fewer
        // per-pass fixed costs), while the threaded path fans fixed
        // [`GEMM_COL_BLOCK`]-wide blocks out over workers.
        let threads = gemm_threads(config, dim * dim, samples);
        if threads <= 1 {
            return Self::evolve_block_into(
                &skeleton,
                &gate_noise,
                &scratch.thetas,
                num_qubits,
                samples,
                0,
                samples,
                &mut scratch.coeffs,
                packed,
            );
        }
        let thetas = &scratch.thetas;
        let blocks = samples.div_ceil(GEMM_COL_BLOCK);
        let panels = map_indexed_with(blocks, threads, RyCoeffs::default, |coeffs, b| {
            let c0 = b * GEMM_COL_BLOCK;
            let c1 = (c0 + GEMM_COL_BLOCK).min(samples);
            Self::evolve_block(
                &skeleton,
                &gate_noise,
                thetas,
                num_qubits,
                samples,
                c0,
                c1,
                coeffs,
            )
        });

        packed.resize_zeroed(dim * dim, samples);
        for (b, panel) in panels.into_iter().enumerate() {
            let panel = panel?;
            let c0 = b * GEMM_COL_BLOCK;
            let width = panel.cols();
            for i in 0..dim * dim {
                packed.as_mut_slice()[i * samples + c0..i * samples + c0 + width]
                    .copy_from_slice(panel.row(i));
            }
        }
        Ok(())
    }

    /// Evolves one column block (samples `c0..c1`) through the whole
    /// skeleton: per-column RY conjugations interleaved with the shared
    /// panel channel kernels. Blocks never exceed [`GEMM_COL_BLOCK`]
    /// columns — worker parallelism lives one level up, over the blocks.
    #[allow(clippy::too_many_arguments)] // private worker body of prepare_batch
    fn evolve_block(
        skeleton: &PrepSkeleton,
        gate_noise: &GateNoise,
        thetas: &[f64],
        num_qubits: usize,
        samples: usize,
        c0: usize,
        c1: usize,
        coeffs: &mut RyCoeffs,
    ) -> Result<CMatrix, QuorumError> {
        let mut block = CMatrix::zeros(0, 0);
        Self::evolve_block_into(
            skeleton, gate_noise, thetas, num_qubits, samples, c0, c1, coeffs, &mut block,
        )?;
        Ok(block)
    }

    /// [`DensityEngine::evolve_block`] writing into a caller-owned matrix,
    /// so the sequential full-width path reuses one resident buffer across
    /// panels instead of allocating `4^n × S` complexes per call.
    #[allow(clippy::too_many_arguments)] // private worker body of prepare_batch
    fn evolve_block_into(
        skeleton: &PrepSkeleton,
        gate_noise: &GateNoise,
        thetas: &[f64],
        num_qubits: usize,
        samples: usize,
        c0: usize,
        c1: usize,
        coeffs: &mut RyCoeffs,
        block: &mut CMatrix,
    ) -> Result<(), QuorumError> {
        let dim = 1usize << num_qubits;
        let width = c1 - c0;
        block.resize_zeroed(dim * dim, width);
        for j in 0..width {
            // vec(|0…0⟩⟨0…0|): row-major index (0, 0) = row 0.
            block[(0, j)] = C64::ONE;
        }
        coeffs.cc.resize(width, 0.0);
        coeffs.cs.resize(width, 0.0);
        coeffs.ss.resize(width, 0.0);
        for step in skeleton.steps() {
            match *step {
                PrepStep::Ry {
                    target,
                    angle_index,
                } => {
                    let lane = &thetas[angle_index * samples + c0..angle_index * samples + c1];
                    for (j, &theta) in lane.iter().enumerate() {
                        // Same half-angle evaluation as Gate::RY's matrix,
                        // so the conjugation matches the per-sample gate
                        // kernel bit for bit.
                        let half = theta / 2.0;
                        let (c, s) = (half.cos(), half.sin());
                        coeffs.cc[j] = c * c;
                        coeffs.cs[j] = c * s;
                        coeffs.ss[j] = s * s;
                    }
                    ry_conjugate_columns(
                        block.as_mut_slice(),
                        dim,
                        width,
                        target,
                        &coeffs.cc,
                        &coeffs.cs,
                        &coeffs.ss,
                    );
                    gate_noise
                        .apply_after_gate_columns(block.as_mut_slice(), dim, width, 1, &[target])
                        .map_err(QuorumError::Simulation)?;
                }
                PrepStep::Cx { control, target } => {
                    permute_cx_columns(block.as_mut_slice(), dim, width, control, target);
                    gate_noise
                        .apply_after_gate_columns(
                            block.as_mut_slice(),
                            dim,
                            width,
                            2,
                            &[control, target],
                        )
                        .map_err(QuorumError::Simulation)?;
                }
            }
        }
        Ok(())
    }

    /// Scores an already-prepared `4^n × S` batch (the output of
    /// [`DensityEngine::prepare_batch`]) at every requested compression
    /// level: the readout functional `W·P` once, one cached superoperator
    /// GEMM plus column dots per level — the score half of the prep/score
    /// seam, reusable across calls for streaming workloads.
    ///
    /// # Errors
    ///
    /// Rejects non-noisy execution and bad reset counts; propagates
    /// simulation failures.
    pub fn score_prepared(
        group: &EnsembleGroup,
        packed: &CMatrix,
        config: &QuorumConfig,
        levels: &[usize],
    ) -> Result<Vec<Vec<f64>>, QuorumError> {
        DENSITY_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            Self::score_prepared_scratch(group, packed, config, levels, &mut scratch.score)
        })
    }

    /// The body of [`DensityEngine::score_prepared`] running on reusable
    /// scratch: the two GEMM products land in resident matrices and the
    /// per-sample accumulator vector is recycled, so steady-state scoring
    /// allocates nothing panel-proportional.
    fn score_prepared_scratch(
        group: &EnsembleGroup,
        packed: &CMatrix,
        config: &QuorumConfig,
        levels: &[usize],
        scratch: &mut ScoreScratch,
    ) -> Result<Vec<Vec<f64>>, QuorumError> {
        let (ctx, shots) = NoisyPassContext::prepare(group, config, levels)?;
        let dim2 = packed.rows();
        let samples = packed.cols();
        let threads = gemm_threads(config, dim2, samples);
        ctx.w
            .matmul_threaded_into(packed, threads, &mut scratch.wp)?;

        let mut out = Vec::with_capacity(levels.len());
        for (level, superop) in ctx.superops.iter().enumerate() {
            superop.matmul_threaded_into(packed, threads, &mut scratch.evolved)?;
            // raw_j = Σ_i evolved[i,j]·wp[i,j], accumulated row-by-row so
            // each sample sums in the same index order as the per-sample
            // matvec path — the two engines agree to machine precision.
            scratch.raw.clear();
            scratch.raw.resize(samples, C64::ZERO);
            for i in 0..dim2 {
                for ((acc, &a), &b) in scratch
                    .raw
                    .iter_mut()
                    .zip(scratch.evolved.row(i))
                    .zip(scratch.wp.row(i))
                {
                    *acc += a * b;
                }
            }
            out.push(
                scratch
                    .raw
                    .iter()
                    .enumerate()
                    .map(|(j, &z)| ctx.finish(z, shots, config, group.index(), levels[level], j))
                    .collect(),
            );
        }
        Ok(out)
    }

    /// Full prepare-then-score pass over rows from any contiguous source,
    /// holding the thread-local scratch exactly once: the panel lands in
    /// `scratch.packed`, preparation runs through `scratch.prep`, scoring
    /// through `scratch.score` — disjoint field borrows, no re-entry.
    fn deviations_rows<'a>(
        group: &EnsembleGroup,
        config: &QuorumConfig,
        levels: &[usize],
        rows: impl Iterator<Item = &'a [f64]>,
        samples: usize,
    ) -> Result<Vec<Vec<f64>>, QuorumError> {
        DENSITY_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let DensityScratch {
                prep,
                packed,
                score,
            } = scratch;
            Self::prepare_panel_into(group, rows, samples, config, prep, packed)?;
            Self::score_prepared_scratch(group, packed, config, levels, score)
        })
    }
}

impl ScoringEngine for DensityEngine {
    fn name(&self) -> &'static str {
        "density"
    }

    fn deviations(
        &self,
        group: &EnsembleGroup,
        normalized: &Dataset,
        config: &QuorumConfig,
        reset_count: usize,
    ) -> Result<Vec<f64>, QuorumError> {
        let mut all = self.deviations_all_levels(group, normalized, config, &[reset_count])?;
        all.pop()
            .ok_or_else(|| QuorumError::Internal("deviations_all_levels returned no levels".into()))
    }

    fn deviations_all_levels(
        &self,
        group: &EnsembleGroup,
        normalized: &Dataset,
        config: &QuorumConfig,
        levels: &[usize],
    ) -> Result<Vec<Vec<f64>>, QuorumError> {
        // The batch: every sample's vec(ρ_in) as one matrix column,
        // prepared in lockstep. The readout functional applies to the
        // whole batch once (`W·P` is level-independent); each level then
        // costs one superoperator GEMM plus column dot products.
        Self::deviations_rows(
            group,
            config,
            levels,
            normalized.rows().iter().map(Vec::as_slice),
            normalized.num_samples(),
        )
    }

    fn deviations_all_levels_panel(
        &self,
        group: &EnsembleGroup,
        panel: &SamplePanel<'_>,
        config: &QuorumConfig,
        levels: &[usize],
    ) -> Result<Vec<Vec<f64>>, QuorumError> {
        Self::deviations_rows(group, config, levels, panel.rows(), panel.num_samples())
    }
}

/// Reusable per-worker scratch for one structured column block: the
/// gathered panel, the readout image `Y = W·P`, and the per-level
/// evolved panel.
#[derive(Default)]
struct StructuredScratch {
    panel: Vec<C64>,
    y: Vec<C64>,
    evolved: Vec<C64>,
}

/// The structured analytic density noise engine: the same lockstep
/// `4^n × S` batch preparation as [`DensityEngine`], but nothing dense
/// after it — each level's bottlenecked segment runs as a cached
/// per-gate [`ChannelProgram`] over the panel
/// ([`EnsembleGroup::channel_program`]), and the SWAP-test readout is
/// folded into a bond-4 matrix-product sweep ([`SwapTestMpo`]). No
/// `16^n` object is ever built or applied, so the per-(group, level)
/// cost drops from `O(16^n) + O(16^n · S)` to `O(ops · 4^n · S)` —
/// dense wins below ~5 data qubits (tiny `4^n`, one GEMM), structured
/// wins at and above it and is the only density path past the dense
/// width cap. The dense engine stays the bit-exact small-n oracle the
/// structured path is pinned against (≤ 1e-9, `tests/`
/// `engine_structured_properties`).
#[derive(Debug, Clone, Copy, Default)]
pub struct StructuredDensityEngine;

impl StructuredDensityEngine {
    /// Scores an already-prepared `4^n × S` batch (the output of
    /// [`DensityEngine::prepare_batch`]) at every requested compression
    /// level, column-block by column-block: per block, the MPO readout
    /// image `Y = W·P` once (it is level-independent), then one channel
    /// program walk plus column dots per level. Blocks are fixed at
    /// [`GEMM_COL_BLOCK`] columns and fanned over workers with
    /// per-worker scratch, like the preparation half.
    ///
    /// # Errors
    ///
    /// Rejects non-noisy execution and bad reset counts; propagates
    /// simulation failures.
    pub fn score_prepared(
        group: &EnsembleGroup,
        packed: &CMatrix,
        config: &QuorumConfig,
        levels: &[usize],
    ) -> Result<Vec<Vec<f64>>, QuorumError> {
        ensure_noisy_mode(config)?;
        let (noise, shots) = match &config.execution {
            ExecutionMode::Noisy { noise, shots } => (noise, *shots),
            _ => unreachable!("ensure_noisy_mode admits only Noisy execution"),
        };
        let n = group.ansatz().num_qubits();
        for &reset_count in levels {
            ensure_reset_range(reset_count, n)?;
        }
        let gate_noise = GateNoise::from_model(noise);
        let readout = gate_noise.readout_error();
        // Three constant-size pull-backs — cheap enough to build per
        // scoring pass, unlike the dense functional.
        let mpo = SwapTestMpo::build(n, &gate_noise).map_err(QuorumError::Simulation)?;
        let programs = levels
            .iter()
            .map(|&reset_count| group.channel_program(noise, reset_count))
            .collect::<Result<Vec<_>, _>>()?;

        let dim2 = packed.rows();
        let samples = packed.cols();
        let mut out: Vec<Vec<f64>> = levels.iter().map(|_| Vec::with_capacity(samples)).collect();
        if samples == 0 {
            return Ok(out);
        }
        let threads = gemm_threads(config, dim2, samples);
        let blocks = samples.div_ceil(GEMM_COL_BLOCK);
        let block_raws = map_indexed_with(blocks, threads, StructuredScratch::default, |s, b| {
            let c0 = b * GEMM_COL_BLOCK;
            let c1 = (c0 + GEMM_COL_BLOCK).min(samples);
            let width = c1 - c0;
            s.panel.clear();
            s.panel.reserve(dim2 * width);
            for i in 0..dim2 {
                s.panel.extend_from_slice(&packed.row(i)[c0..c1]);
            }
            s.y.resize(dim2 * width, C64::ZERO);
            mpo.apply_panel(&s.panel, width, &mut s.y);
            let mut raws = Vec::with_capacity(programs.len());
            for program in &programs {
                s.evolved.clear();
                s.evolved.extend_from_slice(&s.panel);
                program.apply_panel(&mut s.evolved, width);
                // raw_j = Σ_i evolved[i,j]·y[i,j], row-by-row in the
                // same index order as the dense engine's accumulation.
                let mut raw = vec![C64::ZERO; width];
                for i in 0..dim2 {
                    let ev = &s.evolved[i * width..(i + 1) * width];
                    let yr = &s.y[i * width..(i + 1) * width];
                    for ((acc, &a), &b) in raw.iter_mut().zip(ev).zip(yr) {
                        *acc += a * b;
                    }
                }
                raws.push(raw);
            }
            raws
        });

        for (b, raws) in block_raws.into_iter().enumerate() {
            let c0 = b * GEMM_COL_BLOCK;
            for (level, raw) in raws.into_iter().enumerate() {
                out[level].extend(raw.into_iter().enumerate().map(|(j, z)| {
                    finish_deviation(
                        readout,
                        z,
                        shots,
                        config,
                        group.index(),
                        levels[level],
                        c0 + j,
                    )
                }));
            }
        }
        Ok(out)
    }
}

impl ScoringEngine for StructuredDensityEngine {
    fn name(&self) -> &'static str {
        "density-structured"
    }

    fn deviations(
        &self,
        group: &EnsembleGroup,
        normalized: &Dataset,
        config: &QuorumConfig,
        reset_count: usize,
    ) -> Result<Vec<f64>, QuorumError> {
        let mut all = self.deviations_all_levels(group, normalized, config, &[reset_count])?;
        all.pop()
            .ok_or_else(|| QuorumError::Internal("deviations_all_levels returned no levels".into()))
    }

    fn deviations_all_levels(
        &self,
        group: &EnsembleGroup,
        normalized: &Dataset,
        config: &QuorumConfig,
        levels: &[usize],
    ) -> Result<Vec<Vec<f64>>, QuorumError> {
        let packed = DensityEngine::prepare_batch(group, normalized, config)?;
        Self::score_prepared(group, &packed, config, levels)
    }

    fn deviations_all_levels_panel(
        &self,
        group: &EnsembleGroup,
        panel: &SamplePanel<'_>,
        config: &QuorumConfig,
        levels: &[usize],
    ) -> Result<Vec<Vec<f64>>, QuorumError> {
        // Preparation reuses the resident density scratch; the structured
        // score half never touches that thread-local, so holding the
        // borrow across it is safe.
        DENSITY_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            DensityEngine::prepare_panel_into(
                group,
                panel.rows(),
                panel.num_samples(),
                config,
                &mut scratch.prep,
                &mut scratch.packed,
            )?;
            Self::score_prepared(group, &scratch.packed, config, levels)
        })
    }
}

/// The per-sample density oracle: PR 3's one-`4^n`-matvec-per-(sample,
/// level) ordering — and the per-sample gate-walk state preparation —
/// kept selectable (and benchmarked) as the reference the batched
/// [`DensityEngine`] is pinned against, the mixed-state analogue of
/// [`AnalyticEngine`] vs [`BatchedAnalyticEngine`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SampleDensityEngine;

impl SampleDensityEngine {
    /// Packs every sample's noisy prepared state into the columns of a
    /// `4^n × S` matrix through the **per-sample** gate walk: each column
    /// simulates its own lowered Möttönen circuit density-matrix style,
    /// gate by gate with the fused per-gate channels. The reference the
    /// lockstep pass ([`DensityEngine::prepare_batch`]) is pinned against
    /// — the two walk the *same* skeleton (every sample's circuit has
    /// identical gate positions) with the same per-element arithmetic, so
    /// they agree to machine precision.
    ///
    /// # Errors
    ///
    /// Rejects non-noisy execution modes and propagates embedding and
    /// simulation failures.
    pub fn prepare_batch(
        group: &EnsembleGroup,
        normalized: &Dataset,
        config: &QuorumConfig,
    ) -> Result<CMatrix, QuorumError> {
        ensure_noisy(config)?;
        let noise = match &config.execution {
            ExecutionMode::Noisy { noise, .. } => noise,
            _ => unreachable!("ensure_noisy admits only Noisy execution"),
        };
        let gate_noise = GateNoise::from_model(noise);
        let num_qubits = group.ansatz().num_qubits();
        let dim = 1usize << num_qubits;
        let mut packed = CMatrix::zeros(dim * dim, normalized.num_samples());
        let mut values = Vec::with_capacity(group.features().len());
        let mut amps = vec![0.0_f64; dim];
        for (col, row) in normalized.rows().iter().enumerate() {
            group.features().project_into(row, &mut values);
            crate::embed::amplitudes_with_overflow_into(&values, num_qubits, &mut amps)?;
            let rho_in = noisy_prepared_state(&amps, num_qubits, &gate_noise)?;
            for (i, &v) in rho_in.as_slice().iter().enumerate() {
                packed[(i, col)] = v;
            }
        }
        Ok(packed)
    }
}

impl ScoringEngine for SampleDensityEngine {
    fn name(&self) -> &'static str {
        "density-sample"
    }

    fn deviations(
        &self,
        group: &EnsembleGroup,
        normalized: &Dataset,
        config: &QuorumConfig,
        reset_count: usize,
    ) -> Result<Vec<f64>, QuorumError> {
        let mut all = self.deviations_all_levels(group, normalized, config, &[reset_count])?;
        all.pop()
            .ok_or_else(|| QuorumError::Internal("deviations_all_levels returned no levels".into()))
    }

    fn deviations_all_levels(
        &self,
        group: &EnsembleGroup,
        normalized: &Dataset,
        config: &QuorumConfig,
        levels: &[usize],
    ) -> Result<Vec<Vec<f64>>, QuorumError> {
        let (ctx, shots) = NoisyPassContext::prepare(group, config, levels)?;
        let n = group.ansatz().num_qubits();

        let mut out: Vec<Vec<f64>> = levels
            .iter()
            .map(|_| Vec::with_capacity(normalized.num_samples()))
            .collect();
        let mut values = Vec::with_capacity(group.features().len());
        let mut amps = vec![0.0_f64; 1usize << n];
        for (i, row) in normalized.rows().iter().enumerate() {
            group.features().project_into(row, &mut values);
            crate::embed::amplitudes_with_overflow_into(&values, n, &mut amps)?;
            let rho_in = noisy_prepared_state(&amps, n, ctx.gate_noise.as_ref())?;
            let wb = ctx.w.mul_vec(rho_in.as_slice());
            for (level, superop) in ctx.superops.iter().enumerate() {
                let rho_a = superop.mul_vec(rho_in.as_slice());
                let raw: C64 = rho_a.iter().zip(&wb).map(|(a, b)| *a * *b).sum();
                out[level].push(ctx.finish(raw, shots, config, group.index(), levels[level], i));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::BucketPlan;

    fn tiny_dataset() -> Dataset {
        let mut rows = Vec::new();
        for i in 0..10 {
            let base = 0.05 + 0.003 * (i as f64);
            rows.push(vec![
                base,
                base * 1.1,
                base * 0.9,
                base,
                base,
                base * 1.2,
                base,
            ]);
        }
        rows.push(vec![0.14, 0.0, 0.14, 0.0, 0.14, 0.0, 0.14]);
        Dataset::from_rows("engine-tiny", rows, None).unwrap()
    }

    fn group_for(config: &QuorumConfig, ds: &Dataset, index: usize) -> EnsembleGroup {
        let plan = BucketPlan::from_target(ds.num_samples(), 0.1, config.bucket_probability);
        EnsembleGroup::generate(index, config, ds.num_features(), &plan)
    }

    #[test]
    fn engines_agree_on_exact_deviations() {
        let ds = tiny_dataset();
        let config = QuorumConfig::default().with_seed(5);
        for index in 0..3 {
            let group = group_for(&config, &ds, index);
            for reset_count in 1..config.data_qubits {
                let circuit = CircuitEngine
                    .deviations(&group, &ds, &config, reset_count)
                    .unwrap();
                let analytic = AnalyticEngine
                    .deviations(&group, &ds, &config, reset_count)
                    .unwrap();
                for (c, a) in circuit.iter().zip(&analytic) {
                    assert!(
                        (c - a).abs() < 1e-9,
                        "group {index} reset {reset_count}: circuit {c} vs analytic {a}"
                    );
                }
            }
        }
    }

    #[test]
    fn analytic_sampled_matches_circuit_sampled() {
        // Same exact deviation + same seed + same sampler ⇒ identical
        // binomial draws (up to knife-edge rounding, absent here).
        let ds = tiny_dataset();
        let config = QuorumConfig::default()
            .with_seed(9)
            .with_execution(ExecutionMode::Sampled { shots: 2048 });
        let group = group_for(&config, &ds, 1);
        let circuit = CircuitEngine.deviations(&group, &ds, &config, 1).unwrap();
        let analytic = AnalyticEngine.deviations(&group, &ds, &config, 1).unwrap();
        for (c, a) in circuit.iter().zip(&analytic) {
            assert!((c - a).abs() < 1e-12, "circuit {c} vs analytic {a}");
        }
    }

    #[test]
    fn analytic_engines_reject_noisy_execution() {
        let ds = tiny_dataset();
        let config = QuorumConfig::default().with_execution(ExecutionMode::Noisy {
            noise: qsim::NoiseModel::brisbane(),
            shots: None,
        });
        let group = group_for(&config, &ds, 0);
        assert!(matches!(
            AnalyticEngine.deviations(&group, &ds, &config, 1),
            Err(QuorumError::InvalidConfig(_))
        ));
        assert!(matches!(
            BatchedAnalyticEngine.deviations(&group, &ds, &config, 1),
            Err(QuorumError::InvalidConfig(_))
        ));
    }

    #[test]
    fn analytic_engines_reject_bad_reset_counts() {
        let ds = tiny_dataset();
        let config = QuorumConfig::default();
        let group = group_for(&config, &ds, 0);
        for engine in [
            &AnalyticEngine as &dyn ScoringEngine,
            &BatchedAnalyticEngine,
        ] {
            assert!(engine.deviations(&group, &ds, &config, 0).is_err());
            assert!(engine
                .deviations(&group, &ds, &config, config.data_qubits)
                .is_err());
        }
    }

    #[test]
    fn resolve_follows_configuration() {
        let auto = QuorumConfig::default();
        assert_eq!(resolve(&auto).unwrap().name(), "batched");
        let forced = QuorumConfig::default().with_engine(EngineKind::Analytic);
        assert_eq!(resolve(&forced).unwrap().name(), "analytic");
        let forced = QuorumConfig::default().with_engine(EngineKind::Circuit);
        assert_eq!(resolve(&forced).unwrap().name(), "circuit");
        let noisy = QuorumConfig::default().with_execution(ExecutionMode::Noisy {
            noise: qsim::NoiseModel::brisbane(),
            shots: None,
        });
        assert_eq!(resolve(&noisy).unwrap().name(), "density");
        let forced = noisy.clone().with_engine(EngineKind::Circuit);
        assert_eq!(resolve(&forced).unwrap().name(), "circuit");
        for kind in [EngineKind::Analytic, EngineKind::Batched] {
            let bad =
                QuorumConfig::default()
                    .with_engine(kind)
                    .with_execution(ExecutionMode::Noisy {
                        noise: qsim::NoiseModel::brisbane(),
                        shots: None,
                    });
            assert!(resolve(&bad).is_err());
        }
        // The density engines are noise-only: Exact and Sampled reject
        // them, and the per-sample oracle resolves by name under Noisy.
        for kind in [EngineKind::Density, EngineKind::DensitySample] {
            let bad = QuorumConfig::default().with_engine(kind);
            assert!(resolve(&bad).is_err());
            let bad = QuorumConfig::default()
                .with_engine(kind)
                .with_execution(ExecutionMode::Sampled { shots: 64 });
            assert!(resolve(&bad).is_err());
        }
        let forced = noisy.clone().with_engine(EngineKind::DensitySample);
        assert_eq!(resolve(&forced).unwrap().name(), "density-sample");
        // The structured engine: noise-only like its dense sibling, the
        // Auto pick for wide noisy registers, width-capped never.
        let forced = noisy.clone().with_engine(EngineKind::DensityStructured);
        assert_eq!(resolve(&forced).unwrap().name(), "density-structured");
        let bad = QuorumConfig::default().with_engine(EngineKind::DensityStructured);
        assert!(resolve(&bad).is_err());
        let wide_auto = noisy.with_data_qubits(7);
        assert_eq!(resolve(&wide_auto).unwrap().name(), "density-structured");
        let wide_dense = wide_auto.with_engine(EngineKind::Density);
        assert!(resolve(&wide_dense).is_err());
    }

    fn noisy_config(noise: qsim::NoiseModel, shots: Option<u64>) -> QuorumConfig {
        QuorumConfig::default()
            .with_seed(5)
            .with_execution(ExecutionMode::Noisy { noise, shots })
    }

    #[test]
    fn density_matches_circuit_oracle_under_noise() {
        let ds = tiny_dataset();
        for noise in [
            qsim::NoiseModel::ideal(),
            qsim::NoiseModel::brisbane(),
            qsim::NoiseModel::brisbane().scaled(2.0),
        ] {
            let config = noisy_config(noise, None);
            let group = group_for(&config, &ds, 1);
            for reset_count in 1..config.data_qubits {
                let circuit = CircuitEngine
                    .deviations(&group, &ds, &config, reset_count)
                    .unwrap();
                let density = DensityEngine
                    .deviations(&group, &ds, &config, reset_count)
                    .unwrap();
                for (c, d) in circuit.iter().zip(&density) {
                    assert!(
                        (c - d).abs() < 1e-9,
                        "reset {reset_count}: circuit {c} vs density {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn density_with_ideal_noise_matches_analytic_engine() {
        // A noise model with no error sources must collapse the density
        // path onto the pure-state analytic numbers.
        let ds = tiny_dataset();
        let exact = QuorumConfig::default().with_seed(5);
        let ideal = noisy_config(qsim::NoiseModel::ideal(), None);
        let group = group_for(&exact, &ds, 2);
        for reset_count in 1..exact.data_qubits {
            let analytic = AnalyticEngine
                .deviations(&group, &ds, &exact, reset_count)
                .unwrap();
            let density = DensityEngine
                .deviations(&group, &ds, &ideal, reset_count)
                .unwrap();
            for (a, d) in analytic.iter().zip(&density) {
                assert!(
                    (a - d).abs() < 1e-12,
                    "reset {reset_count}: analytic {a} vs density {d}"
                );
            }
        }
    }

    #[test]
    fn density_engines_reject_pure_state_execution() {
        let ds = tiny_dataset();
        let config = QuorumConfig::default();
        let group = group_for(&config, &ds, 0);
        let sampled = config
            .clone()
            .with_execution(ExecutionMode::Sampled { shots: 128 });
        for engine in [&DensityEngine as &dyn ScoringEngine, &SampleDensityEngine] {
            assert!(matches!(
                engine.deviations(&group, &ds, &config, 1),
                Err(QuorumError::InvalidConfig(_))
            ));
            assert!(matches!(
                engine.deviations(&group, &ds, &sampled, 1),
                Err(QuorumError::InvalidConfig(_))
            ));
        }
    }

    #[test]
    fn density_engines_reject_bad_reset_counts() {
        let ds = tiny_dataset();
        let config = noisy_config(qsim::NoiseModel::brisbane(), None);
        let group = group_for(&config, &ds, 0);
        for engine in [&DensityEngine as &dyn ScoringEngine, &SampleDensityEngine] {
            assert!(engine.deviations(&group, &ds, &config, 0).is_err());
            assert!(engine
                .deviations(&group, &ds, &config, config.data_qubits)
                .is_err());
        }
    }

    #[test]
    fn batched_density_matches_per_sample_density() {
        // The batched vec(ρ) GEMM path accumulates each sample in the
        // same index order as the per-sample matvec path, so the two
        // density engines agree to machine precision across noise models
        // and the whole level sweep (bit-for-bit without `simd`; the FMA
        // kernel stays within 1e-12).
        let ds = tiny_dataset();
        for noise in [
            qsim::NoiseModel::ideal(),
            qsim::NoiseModel::brisbane(),
            qsim::NoiseModel::brisbane().scaled(2.0),
        ] {
            let config = noisy_config(noise, None);
            let levels = config.effective_compression_levels();
            let group = group_for(&config, &ds, 1);
            let batched = DensityEngine
                .deviations_all_levels(&group, &ds, &config, &levels)
                .unwrap();
            let per_sample = SampleDensityEngine
                .deviations_all_levels(&group, &ds, &config, &levels)
                .unwrap();
            for (level, (b, s)) in batched.iter().zip(&per_sample).enumerate() {
                for (i, (bv, sv)) in b.iter().zip(s).enumerate() {
                    assert!(
                        (bv - sv).abs() < 1e-12,
                        "level {level} sample {i}: batched {bv} vs per-sample {sv}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_density_sampled_draws_match_per_sample() {
        // Shot sampling runs on (near-)identical exact deviations with the
        // same per-measurement seeds, so the binomial draws coincide.
        let ds = tiny_dataset();
        let config = noisy_config(qsim::NoiseModel::brisbane(), Some(1024));
        let group = group_for(&config, &ds, 2);
        let batched = DensityEngine.deviations(&group, &ds, &config, 1).unwrap();
        let per_sample = SampleDensityEngine
            .deviations(&group, &ds, &config, 1)
            .unwrap();
        for (b, s) in batched.iter().zip(&per_sample) {
            assert!((b - s).abs() < 1e-12, "batched {b} vs per-sample {s}");
        }
    }

    #[test]
    fn noisy_scoring_fuses_one_superop_per_level() {
        // The noisy-cache regression pin: a full group pass pays for
        // exactly one superoperator fusion per compression level, across
        // any number of samples and repeated passes.
        let ds = tiny_dataset();
        let config = noisy_config(qsim::NoiseModel::brisbane(), None).with_seed(29);
        let levels = config.effective_compression_levels();
        let group = group_for(&config, &ds, 1);
        assert_eq!(group.noisy_superop_fusions(), 0);
        group.run_with(&DensityEngine, &ds, &config).unwrap();
        assert_eq!(
            group.noisy_superop_fusions(),
            levels.len(),
            "each compression level fuses exactly once"
        );
        group.run_with(&DensityEngine, &ds, &config).unwrap();
        assert_eq!(group.noisy_superop_fusions(), levels.len());
        // A different noise model is a different channel: it fuses anew.
        let scaled = noisy_config(qsim::NoiseModel::brisbane().scaled(0.5), None).with_seed(29);
        group.run_with(&DensityEngine, &ds, &scaled).unwrap();
        assert_eq!(group.noisy_superop_fusions(), 2 * levels.len());
        // Clones start cold, like the encoder cache.
        let fresh = group.clone();
        assert_eq!(fresh.noisy_superop_fusions(), 0);
        fresh.run_with(&DensityEngine, &ds, &config).unwrap();
        assert_eq!(fresh.noisy_superop_fusions(), levels.len());
    }

    #[test]
    fn noisy_scoring_survives_poisoned_global_functional_cache() {
        // Resident-server regression: one scorer thread panicking while it
        // holds the global swap-functional cache must not wedge every later
        // request. The cache recovers the guard and keeps serving the same
        // write-once-valid entries.
        let ds = tiny_dataset();
        let config = noisy_config(qsim::NoiseModel::brisbane(), None).with_seed(31);
        let group = group_for(&config, &ds, 0);
        let before = group.run_with(&DensityEngine, &ds, &config).unwrap();
        SWAP_FUNCTIONAL_CACHE.poison_for_test();
        let after = group.run_with(&DensityEngine, &ds, &config).unwrap();
        assert_eq!(before, after, "recovered cache must score identically");
    }

    #[test]
    fn structured_matches_dense_density_engine() {
        // The tentpole pin at unit-test granularity: the structured
        // per-gate channel walk plus the MPO readout reproduces the
        // dense fused-superoperator numbers on every sample, level and
        // noise model where both paths run.
        let ds = tiny_dataset();
        for noise in [
            qsim::NoiseModel::ideal(),
            qsim::NoiseModel::brisbane(),
            qsim::NoiseModel::brisbane().scaled(2.0),
        ] {
            let config = noisy_config(noise, None);
            let levels = config.effective_compression_levels();
            let group = group_for(&config, &ds, 1);
            let dense = DensityEngine
                .deviations_all_levels(&group, &ds, &config, &levels)
                .unwrap();
            let structured = StructuredDensityEngine
                .deviations_all_levels(&group, &ds, &config, &levels)
                .unwrap();
            for (level, (d, s)) in dense.iter().zip(&structured).enumerate() {
                for (a, b) in d.iter().zip(s) {
                    assert!(
                        (a - b).abs() < 1e-9,
                        "level {level}: dense {a} vs structured {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn structured_scoring_lowers_one_program_per_level() {
        // The program-cache regression pin, mirroring the dense
        // superoperator cache's: one lowering per (noise, level) across
        // any number of samples and repeated passes; clones start cold.
        let ds = tiny_dataset();
        let config = noisy_config(qsim::NoiseModel::brisbane(), None).with_seed(29);
        let levels = config.effective_compression_levels();
        let group = group_for(&config, &ds, 1);
        assert_eq!(group.channel_program_fusions(), 0);
        group
            .run_with(&StructuredDensityEngine, &ds, &config)
            .unwrap();
        assert_eq!(group.channel_program_fusions(), levels.len());
        group
            .run_with(&StructuredDensityEngine, &ds, &config)
            .unwrap();
        assert_eq!(group.channel_program_fusions(), levels.len());
        let scaled = noisy_config(qsim::NoiseModel::brisbane().scaled(0.5), None).with_seed(29);
        group
            .run_with(&StructuredDensityEngine, &ds, &scaled)
            .unwrap();
        assert_eq!(group.channel_program_fusions(), 2 * levels.len());
        let fresh = group.clone();
        assert_eq!(fresh.channel_program_fusions(), 0);
        // The structured pass never touches the dense superoperator cache.
        assert_eq!(group.noisy_superop_fusions(), 0);
    }

    #[test]
    fn structured_rejects_pure_state_and_bad_reset_counts() {
        let ds = tiny_dataset();
        let exact = QuorumConfig::default();
        let group = group_for(&exact, &ds, 0);
        assert!(matches!(
            StructuredDensityEngine.deviations(&group, &ds, &exact, 1),
            Err(QuorumError::InvalidConfig(_))
        ));
        let noisy = noisy_config(qsim::NoiseModel::brisbane(), None);
        assert!(StructuredDensityEngine
            .deviations(&group, &ds, &noisy, 0)
            .is_err());
        assert!(StructuredDensityEngine
            .deviations(&group, &ds, &noisy, noisy.data_qubits)
            .is_err());
    }

    #[test]
    fn fused_noisy_superop_is_trace_preserving() {
        // Column j = vec(C(E_ij)): the channel preserves trace iff every
        // basis column's output trace equals the input's (δ_ij).
        let ds = tiny_dataset();
        let config = noisy_config(qsim::NoiseModel::brisbane(), None);
        let group = group_for(&config, &ds, 0);
        let n = config.data_qubits;
        let dim = 1usize << n;
        let superop = group
            .fused_noisy_superop(&qsim::NoiseModel::brisbane(), 1)
            .unwrap();
        for i in 0..dim {
            for j in 0..dim {
                let col = i * dim + j;
                let mut trace = C64::ZERO;
                for d in 0..dim {
                    trace += superop[(d * dim + d, col)];
                }
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (trace.re - expected).abs() < 1e-12 && trace.im.abs() < 1e-12,
                    "column ({i},{j}) trace {trace:?}"
                );
            }
        }
    }

    #[test]
    fn batched_matches_per_sample_engine_exactly() {
        // Same summation order per sample ⇒ the batched GEMM path is
        // bit-identical to the per-sample matvec path in Exact mode.
        let ds = tiny_dataset();
        let config = QuorumConfig::default().with_seed(17);
        for index in 0..3 {
            let group = group_for(&config, &ds, index);
            for reset_count in 1..config.data_qubits {
                let per_sample = AnalyticEngine
                    .deviations(&group, &ds, &config, reset_count)
                    .unwrap();
                let batched = BatchedAnalyticEngine
                    .deviations(&group, &ds, &config, reset_count)
                    .unwrap();
                for (a, b) in per_sample.iter().zip(&batched) {
                    assert!(
                        (a - b).abs() < 1e-12,
                        "group {index} reset {reset_count}: per-sample {a} vs batched {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_handles_degenerate_single_sample_batch() {
        let ds = tiny_dataset();
        let one = Dataset::from_rows("one", ds.rows()[..1].to_vec(), None).unwrap();
        let config = QuorumConfig::default().with_seed(13);
        let group = group_for(&config, &ds, 0);
        let batched = BatchedAnalyticEngine
            .deviations(&group, &one, &config, 1)
            .unwrap();
        let per_sample = AnalyticEngine.deviations(&group, &one, &config, 1).unwrap();
        assert_eq!(batched.len(), 1);
        assert!((batched[0] - per_sample[0]).abs() < 1e-12);
    }

    #[test]
    fn scoring_all_levels_fuses_the_encoder_exactly_once() {
        // The unitary-cache regression pin: a full group pass over every
        // compression level must pay for exactly one `to_unitary` fusion.
        let ds = tiny_dataset();
        let config = QuorumConfig::default().with_seed(29);
        let group = group_for(&config, &ds, 1);
        assert_eq!(group.encoder_fusions(), 0);
        group
            .run_with(&BatchedAnalyticEngine, &ds, &config)
            .unwrap();
        assert_eq!(
            group.encoder_fusions(),
            1,
            "all compression levels must share one fused encoder"
        );
        // Further passes over the same group stay cached too.
        group
            .run_with(&BatchedAnalyticEngine, &ds, &config)
            .unwrap();
        assert_eq!(group.encoder_fusions(), 1);
        // A clone starts cold and fuses for itself exactly once.
        let fresh = group.clone();
        assert_eq!(fresh.encoder_fusions(), 0);
        fresh
            .run_with(&BatchedAnalyticEngine, &ds, &config)
            .unwrap();
        assert_eq!(fresh.encoder_fusions(), 1);
    }

    #[test]
    fn deviations_stay_in_swap_test_range() {
        let ds = tiny_dataset();
        let config = QuorumConfig::default().with_seed(31);
        let group = group_for(&config, &ds, 2);
        for reset_count in 1..config.data_qubits {
            for p in AnalyticEngine
                .deviations(&group, &ds, &config, reset_count)
                .unwrap()
            {
                assert!((0.0..=0.5).contains(&p), "deviation {p}");
            }
        }
    }
}
