//! Error type for the Quorum pipeline.

use std::error::Error;
use std::fmt;

/// Errors produced by Quorum configuration, embedding or execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QuorumError {
    /// The configuration is internally inconsistent.
    InvalidConfig(String),
    /// The dataset cannot be embedded (wrong shape, bad values).
    InvalidData(String),
    /// An underlying simulator failure.
    Simulation(qsim::QsimError),
    /// An internal invariant was violated; indicates a bug in quorum itself.
    Internal(String),
}

impl fmt::Display for QuorumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuorumError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            QuorumError::InvalidData(msg) => write!(f, "invalid data: {msg}"),
            QuorumError::Simulation(e) => write!(f, "simulation failed: {e}"),
            QuorumError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl Error for QuorumError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QuorumError::Simulation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<qsim::QsimError> for QuorumError {
    fn from(e: qsim::QsimError) -> Self {
        QuorumError::Simulation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = QuorumError::InvalidConfig("zero ensembles".into());
        assert!(e.to_string().contains("zero ensembles"));
        let e: QuorumError = qsim::QsimError::QubitOutOfRange {
            qubit: 9,
            num_qubits: 3,
        }
        .into();
        assert!(e.to_string().contains("simulation failed"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<QuorumError>();
    }
}
