//! Byte-bounded concurrent caches for write-once-valid derived values.
//!
//! The pipeline keeps three long-lived caches of expensive derived
//! objects: the global SWAP-test readout functional
//! ([`crate::engine`]), and each ensemble group's fused noisy
//! superoperators and lowered channel programs
//! ([`crate::ensemble::EnsembleGroup`]). All three share the same
//! correctness story — every cached value is a pure deterministic
//! function of its key, so any build of the same key is
//! interchangeable — and, in a long-lived serving process, the same
//! three failure modes:
//!
//! 1. **Poisoning**: a panicking scorer thread that happens to hold the
//!    cache mutex must not wedge every subsequent request. Values are
//!    write-once-valid (a poisoned guard can only ever expose a fully
//!    constructed entry or the absence of one), so the guard is
//!    recovered via [`std::sync::PoisonError::into_inner`].
//! 2. **Overflow**: when an insert would exceed the byte budget, only
//!    the **oldest** entries are evicted until the new one fits —
//!    never the whole cache, which would re-derive the hottest
//!    `(group, level)` on every pass of a workload that cycles past
//!    the budget. Lookups move their entry to the back, so "oldest"
//!    is least-recently-used.
//! 3. **Build-under-lock**: deriving a value can take multiple
//!    milliseconds (a `16^n` superoperator fusion), so it happens
//!    **outside** the critical section. Racing builders may duplicate
//!    the work — the build counter reports every build honestly — but
//!    the first insert wins and every caller shares one `Arc`.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// A byte-bounded, LRU-evicting, poison-recovering map from keys to
/// shared derived values. Linear scan over entries — every use site
/// holds at most a few dozen `(noise model, level)`-shaped keys.
pub(crate) struct ByteBounded<K, V> {
    entries: Mutex<Vec<(K, Arc<V>)>>,
    builds: AtomicUsize,
}

impl<K: PartialEq + Clone, V> ByteBounded<K, V> {
    /// An empty cache. `const` so global caches can live in a `static`.
    pub const fn new() -> Self {
        ByteBounded {
            entries: Mutex::new(Vec::new()),
            builds: AtomicUsize::new(0),
        }
    }

    /// Locks the entry list, recovering from poisoning: entries are
    /// write-once-valid, so a panic in another holder cannot have left
    /// a half-written value behind.
    fn lock(&self) -> MutexGuard<'_, Vec<(K, Arc<V>)>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// How many times a value was actually built through this cache —
    /// the observable behind the fusion-counter regression tests.
    /// Racing builders each count (duplicate work is real work); a
    /// sequential workload counts exactly its distinct live keys.
    pub fn builds(&self) -> usize {
        self.builds.load(Ordering::Relaxed)
    }

    /// Returns the cached value for `key`, or builds it (outside the
    /// lock), inserts it under the `budget`-byte bound and returns it.
    ///
    /// A hit is moved to the back of the entry list, marking it
    /// most-recently-used. On insert, oldest entries are evicted from
    /// the front until the newcomer fits; a value larger than the whole
    /// budget is returned uncached. If a racing builder inserted the
    /// key first, its value is returned (first insert wins) and the
    /// duplicate build is dropped — but still counted.
    ///
    /// # Errors
    ///
    /// Propagates `build` failures; the cache is left unchanged.
    pub fn get_or_try_build<E>(
        &self,
        key: &K,
        budget: usize,
        bytes_of: impl Fn(&V) -> usize,
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        if let Some(hit) = self.touch(key) {
            return Ok(hit);
        }
        // Build outside the critical section: concurrent scorers of
        // *different* keys proceed in parallel, and scorers of the same
        // key duplicate a build instead of serialising behind a
        // multi-ms lowering.
        let built = Arc::new(build()?);
        self.builds.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.lock();
        if let Some(pos) = entries.iter().position(|(k, _)| k == key) {
            // A racer inserted while we built: first insert wins.
            let entry = entries.remove(pos);
            let value = Arc::clone(&entry.1);
            entries.push(entry);
            return Ok(value);
        }
        let new_bytes = bytes_of(&built);
        if new_bytes <= budget {
            let mut held: usize = entries.iter().map(|(_, v)| bytes_of(v)).sum();
            while held + new_bytes > budget {
                let (_, evicted) = entries.remove(0);
                held -= bytes_of(&evicted);
            }
            entries.push((key.clone(), Arc::clone(&built)));
        }
        Ok(built)
    }

    /// The hit half of [`ByteBounded::get_or_try_build`]: returns the
    /// cached value and marks it most-recently-used.
    fn touch(&self, key: &K) -> Option<Arc<V>> {
        let mut entries = self.lock();
        let pos = entries.iter().position(|(k, _)| k == key)?;
        let entry = entries.remove(pos);
        let value = Arc::clone(&entry.1);
        entries.push(entry);
        Some(value)
    }
}

#[cfg(any(test, feature = "failpoints"))]
impl<K: Send, V: Send + Sync> ByteBounded<K, V> {
    /// Deliberately poisons the entry mutex by panicking a thread that
    /// holds it — the regression-test hook for recovery path 1, also
    /// driven by the serving runtime's chaos suite under the
    /// `failpoints` feature.
    pub fn poison_for_test(&self) {
        let joined = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = self.entries.lock().expect("not yet poisoned");
                panic!("deliberate cache poisoning");
            })
            .join()
        });
        assert!(joined.is_err(), "the poisoning thread must panic");
        assert!(self.entries.is_poisoned(), "mutex should now be poisoned");
    }
}

#[cfg(any(test, feature = "failpoints"))]
impl<K: PartialEq + Clone, V> ByteBounded<K, V> {
    /// Drops every cached entry, leaving the build counter intact — the
    /// cold-restart hook behind the chaos suite's re-warm assertions
    /// (a supervisor restart must rebuild exactly what it pre-warms).
    pub fn purge(&self) {
        self.lock().clear();
    }
}

impl<K: PartialEq + Clone, V> Default for ByteBounded<K, V> {
    fn default() -> Self {
        ByteBounded::new()
    }
}

impl<K, V> Clone for ByteBounded<K, V> {
    /// Clones start cold: cached values are derived state, and sharing
    /// them would entangle otherwise independent owner copies.
    fn clone(&self) -> Self {
        ByteBounded {
            entries: Mutex::new(Vec::new()),
            builds: AtomicUsize::new(0),
        }
    }
}

impl<K, V> fmt::Debug for ByteBounded<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ByteBounded")
            .field("builds", &self.builds.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A value whose "size" is its length — one test byte per element.
    /// The sizing callback receives `&V` by construction, so `&Vec` is
    /// the required parameter type here.
    #[allow(clippy::ptr_arg)]
    fn bytes_of(v: &Vec<u8>) -> usize {
        v.len()
    }

    fn build(tag: u8) -> Result<Vec<u8>, ()> {
        Ok(vec![tag; 10])
    }

    #[test]
    fn caches_and_counts_builds() {
        let cache: ByteBounded<u32, Vec<u8>> = ByteBounded::new();
        let a = cache
            .get_or_try_build(&1, 100, bytes_of, || build(1))
            .unwrap();
        let b = cache
            .get_or_try_build(&1, 100, bytes_of, || build(1))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit must share the built value");
        assert_eq!(cache.builds(), 1);
        cache
            .get_or_try_build(&2, 100, bytes_of, || build(2))
            .unwrap();
        assert_eq!(cache.builds(), 2);
    }

    #[test]
    fn overflow_evicts_oldest_first_and_spares_the_hot_entry() {
        // Budget fits two 10-byte entries. Insert 1 then 2, touch 1 to
        // make it the hot entry, then overflow with 3: the stale 2 must
        // go, not the whole cache (and in particular not 1).
        let cache: ByteBounded<u32, Vec<u8>> = ByteBounded::new();
        cache
            .get_or_try_build(&1, 25, bytes_of, || build(1))
            .unwrap();
        cache
            .get_or_try_build(&2, 25, bytes_of, || build(2))
            .unwrap();
        cache
            .get_or_try_build(&1, 25, bytes_of, || build(1))
            .unwrap();
        assert_eq!(cache.builds(), 2);
        cache
            .get_or_try_build(&3, 25, bytes_of, || build(3))
            .unwrap();
        assert_eq!(cache.builds(), 3);
        // 1 survived the overflow insert…
        cache
            .get_or_try_build(&1, 25, bytes_of, || build(1))
            .unwrap();
        assert_eq!(cache.builds(), 3, "hot entry must survive the overflow");
        // …and 2 (the oldest) was the one evicted.
        cache
            .get_or_try_build(&2, 25, bytes_of, || build(2))
            .unwrap();
        assert_eq!(cache.builds(), 4, "oldest entry should have been evicted");
    }

    #[test]
    fn eviction_frees_just_enough() {
        // Three 10-byte entries under a 35-byte budget: inserting a
        // fourth evicts exactly one (the oldest), keeping the rest.
        let cache: ByteBounded<u32, Vec<u8>> = ByteBounded::new();
        for k in 1..=3 {
            cache
                .get_or_try_build(&k, 35, bytes_of, || build(k as u8))
                .unwrap();
        }
        cache
            .get_or_try_build(&4, 35, bytes_of, || build(4))
            .unwrap();
        assert_eq!(cache.builds(), 4);
        for k in 2..=4 {
            cache
                .get_or_try_build(&k, 35, bytes_of, || build(k as u8))
                .unwrap();
        }
        assert_eq!(cache.builds(), 4, "entries 2..=4 must all have survived");
        cache
            .get_or_try_build(&1, 35, bytes_of, || build(1))
            .unwrap();
        assert_eq!(cache.builds(), 5, "only entry 1 was evicted");
    }

    #[test]
    fn oversized_values_are_returned_uncached() {
        let cache: ByteBounded<u32, Vec<u8>> = ByteBounded::new();
        let v = cache
            .get_or_try_build(&1, 5, bytes_of, || build(1))
            .unwrap();
        assert_eq!(*v, vec![1; 10]);
        cache
            .get_or_try_build(&1, 5, bytes_of, || build(1))
            .unwrap();
        assert_eq!(cache.builds(), 2, "an oversized value is rebuilt per call");
        // …and never displaces entries that do fit.
        cache
            .get_or_try_build(&2, 5, bytes_of, || Ok::<_, ()>(vec![2; 3]))
            .unwrap();
        cache
            .get_or_try_build(&1, 5, bytes_of, || build(1))
            .unwrap();
        cache
            .get_or_try_build(&2, 5, bytes_of, || Ok::<_, ()>(vec![2; 3]))
            .unwrap();
        assert_eq!(cache.builds(), 5 - 1, "the fitting entry stays cached");
    }

    #[test]
    fn build_failure_leaves_the_cache_unchanged() {
        let cache: ByteBounded<u32, Vec<u8>> = ByteBounded::new();
        assert!(cache
            .get_or_try_build(&1, 100, bytes_of, || Err::<Vec<u8>, &str>("boom"))
            .is_err());
        assert_eq!(cache.builds(), 0);
        cache
            .get_or_try_build(&1, 100, bytes_of, || build(1))
            .unwrap();
        assert_eq!(cache.builds(), 1);
    }

    #[test]
    fn survives_a_poisoned_mutex() {
        // The serving-runtime regression: a panicked holder thread must
        // not wedge later callers — hits and inserts both keep working.
        let cache: ByteBounded<u32, Vec<u8>> = ByteBounded::new();
        cache
            .get_or_try_build(&1, 100, bytes_of, || build(1))
            .unwrap();
        cache.poison_for_test();
        let hit = cache
            .get_or_try_build(&1, 100, bytes_of, || build(1))
            .unwrap();
        assert_eq!(*hit, vec![1; 10]);
        assert_eq!(cache.builds(), 1, "the pre-poison entry is still served");
        let fresh = cache
            .get_or_try_build(&2, 100, bytes_of, || build(2))
            .unwrap();
        assert_eq!(*fresh, vec![2; 10]);
        assert_eq!(cache.builds(), 2);
    }

    #[test]
    fn purge_empties_but_keeps_counting() {
        let cache: ByteBounded<u32, Vec<u8>> = ByteBounded::new();
        cache
            .get_or_try_build(&1, 100, bytes_of, || build(1))
            .unwrap();
        cache.purge();
        cache
            .get_or_try_build(&1, 100, bytes_of, || build(1))
            .unwrap();
        assert_eq!(cache.builds(), 2, "a purged entry is rebuilt on next use");
    }

    #[test]
    fn clones_start_cold() {
        let cache: ByteBounded<u32, Vec<u8>> = ByteBounded::new();
        cache
            .get_or_try_build(&1, 100, bytes_of, || build(1))
            .unwrap();
        let fresh = cache.clone();
        assert_eq!(fresh.builds(), 0);
        fresh
            .get_or_try_build(&1, 100, bytes_of, || build(1))
            .unwrap();
        assert_eq!(fresh.builds(), 1);
    }
}
