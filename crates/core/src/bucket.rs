//! Bucketing: random partition of the dataset into small subsets sized so
//! each holds at least one anomaly with a target probability (paper §IV-C,
//! Table I).
//!
//! With anomaly rate `r`, a bucket of `s` samples misses every anomaly with
//! probability `(1−r)^s`; solving `1 − (1−r)^s ≥ p` gives
//! `s = ⌈ln(1−p) / ln(1−r)⌉`.

use rand::seq::SliceRandom;
use rand::Rng;

/// A bucket-sizing plan derived from the dataset size, anomaly-rate prior
/// and target probability.
///
/// # Examples
///
/// ```
/// use quorum_core::bucket::BucketPlan;
///
/// // Breast cancer: N=367, r≈10/367, p=0.75 (Table I row 1).
/// let plan = BucketPlan::from_target(367, 10.0 / 367.0, 0.75);
/// assert!((2..367).contains(&plan.bucket_size()));
/// // The plan delivers at least the requested probability.
/// assert!(plan.actual_probability(10.0 / 367.0) >= 0.75);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketPlan {
    num_samples: usize,
    bucket_size: usize,
}

impl BucketPlan {
    /// Derives the bucket size for `num_samples` samples with anomaly rate
    /// `anomaly_rate` and target probability `target_probability` of at
    /// least one anomaly per bucket. The size is clamped to `[2, N]` (a
    /// bucket of one sample has no deviation statistics).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < anomaly_rate < 1`, `0 < target_probability < 1`
    /// and `num_samples > 0`.
    pub fn from_target(num_samples: usize, anomaly_rate: f64, target_probability: f64) -> Self {
        assert!(num_samples > 0, "empty dataset");
        assert!(
            anomaly_rate > 0.0 && anomaly_rate < 1.0,
            "anomaly rate strictly inside (0,1)"
        );
        assert!(
            target_probability > 0.0 && target_probability < 1.0,
            "target probability strictly inside (0,1)"
        );
        let raw = ((1.0 - target_probability).ln() / (1.0 - anomaly_rate).ln()).ceil();
        let size = if raw.is_finite() {
            raw as usize
        } else {
            num_samples
        };
        BucketPlan {
            num_samples,
            bucket_size: size.clamp(2, num_samples),
        }
    }

    /// Builds a plan with an explicit bucket size (for ablations).
    ///
    /// # Panics
    ///
    /// Panics if `bucket_size < 2` or `bucket_size > num_samples`.
    pub fn with_size(num_samples: usize, bucket_size: usize) -> Self {
        assert!(
            (2..=num_samples).contains(&bucket_size),
            "bucket size must lie in [2, N]"
        );
        BucketPlan {
            num_samples,
            bucket_size,
        }
    }

    /// Samples per bucket.
    pub fn bucket_size(&self) -> usize {
        self.bucket_size
    }

    /// Number of buckets the partition will produce (`⌈N / size⌉`, with the
    /// final partial bucket folded into its predecessor when it would be a
    /// singleton).
    pub fn num_buckets(&self) -> usize {
        let full = self.num_samples / self.bucket_size;
        let rem = self.num_samples % self.bucket_size;
        match (full, rem) {
            (0, _) => 1,
            (_, 0) => full,
            // a trailing single sample can't form statistics; merge it
            (_, 1) => full,
            _ => full + 1,
        }
    }

    /// The actual probability a bucket of this size holds ≥ 1 anomaly at
    /// the given rate.
    pub fn actual_probability(&self, anomaly_rate: f64) -> f64 {
        1.0 - (1.0 - anomaly_rate).powi(self.bucket_size as i32)
    }

    /// Randomly partitions sample indices `0..N` into buckets of the
    /// planned size. Every index appears in exactly one bucket; a trailing
    /// singleton is merged into the previous bucket.
    pub fn assign<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Vec<usize>> {
        let mut order: Vec<usize> = (0..self.num_samples).collect();
        order.shuffle(rng);
        let mut buckets: Vec<Vec<usize>> = order
            .chunks(self.bucket_size)
            .map(<[usize]>::to_vec)
            .collect();
        if buckets.len() > 1 && buckets.last().is_some_and(|b| b.len() == 1) {
            let last = buckets.pop().expect("non-empty");
            buckets
                .last_mut()
                .expect("at least one bucket remains")
                .extend(last);
        }
        buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn formula_matches_hand_computation() {
        // r = 0.1, p = 0.75: s = ln(0.25)/ln(0.9) = 13.16... -> 14
        let plan = BucketPlan::from_target(1000, 0.1, 0.75);
        assert_eq!(plan.bucket_size(), 14);
        assert!(plan.actual_probability(0.1) >= 0.75);
    }

    #[test]
    fn table1_bucket_sizes_are_reasonable() {
        // The four (N, anomalies, p) rows of Table I.
        let rows = [
            (367usize, 10.0, 0.75),
            (809, 90.0, 0.6),
            (533, 33.0, 0.95),
            (1000, 30.0, 0.75),
        ];
        for (n, a, p) in rows {
            let r = a / n as f64;
            let plan = BucketPlan::from_target(n, r, p);
            assert!(plan.bucket_size() >= 2);
            assert!(plan.bucket_size() <= n);
            assert!(plan.actual_probability(r) >= p, "plan misses target");
            // One size smaller would miss the target (minimality), unless
            // clamped at 2.
            if plan.bucket_size() > 2 {
                let smaller = BucketPlan::with_size(n, plan.bucket_size() - 1);
                assert!(smaller.actual_probability(r) < p);
            }
        }
    }

    #[test]
    fn higher_probability_needs_bigger_buckets() {
        let r = 33.0 / 533.0;
        let sizes: Vec<usize> = [0.5, 0.6, 0.75, 0.95, 0.98]
            .iter()
            .map(|&p| BucketPlan::from_target(533, r, p).bucket_size())
            .collect();
        for w in sizes.windows(2) {
            assert!(w[1] >= w[0], "sizes not monotone: {sizes:?}");
        }
    }

    #[test]
    fn clamps_to_dataset_size() {
        // Tiny anomaly rate forces the bucket to the whole dataset.
        let plan = BucketPlan::from_target(50, 1e-6, 0.99);
        assert_eq!(plan.bucket_size(), 50);
        assert_eq!(plan.num_buckets(), 1);
    }

    #[test]
    fn assignment_is_a_partition() {
        let plan = BucketPlan::from_target(103, 0.08, 0.75);
        let mut rng = StdRng::seed_from_u64(4);
        let buckets = plan.assign(&mut rng);
        let mut seen = [false; 103];
        for bucket in &buckets {
            assert!(bucket.len() >= 2, "bucket too small: {}", bucket.len());
            for &i in bucket {
                assert!(!seen[i], "index {i} appears twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "missing indices");
        assert_eq!(buckets.len(), plan.num_buckets());
    }

    #[test]
    fn trailing_singleton_is_merged() {
        // 7 samples, bucket size 3 -> chunks 3,3,1 -> merged to 3,4.
        let plan = BucketPlan::with_size(7, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let buckets = plan.assign(&mut rng);
        assert_eq!(buckets.len(), 2);
        let sizes: Vec<usize> = buckets.iter().map(Vec::len).collect();
        assert!(sizes.contains(&3) && sizes.contains(&4));
    }

    #[test]
    fn different_rngs_give_different_partitions() {
        let plan = BucketPlan::with_size(40, 5);
        let a = plan.assign(&mut StdRng::seed_from_u64(1));
        let b = plan.assign(&mut StdRng::seed_from_u64(2));
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "anomaly rate")]
    fn rejects_zero_rate() {
        BucketPlan::from_target(10, 0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "bucket size")]
    fn with_size_validates() {
        BucketPlan::with_size(10, 1);
    }
}
