//! # quorum-core — zero-training unsupervised quantum anomaly detection
//!
//! The primary contribution of *"Quorum: Zero-Training Unsupervised Anomaly
//! Detection using Quantum Autoencoders"* (DAC 2025), reproduced in Rust on
//! top of the [`qsim`] simulation stack.
//!
//! ## Pipeline (paper §IV, Fig. 1)
//!
//! 1. **Preprocess** ([`qdata::preprocess`]): range-normalise every feature
//!    to `[0, 1/M]`.
//! 2. **Embed** ([`embed`]): squared features become probabilities; the
//!    remaining mass goes to an overflow state; amplitudes are prepared
//!    twice (transform + reference registers).
//! 3. **Bucket** ([`bucket`]): random subsets sized so each holds an
//!    anomaly with target probability `p` (Table I).
//! 4. **Select features** ([`features`]): uniform random `m = 2^n − 1`
//!    columns per ensemble group.
//! 5. **Random autoencoder** ([`ansatz`], [`circuit`]): an untrained
//!    encoder with angles from `U(0, 2π)`, a partial-reset bottleneck, the
//!    exact inverse decoder, then a SWAP test against the reference.
//! 6. **Scoring engine** ([`engine`]): the SWAP-test deviation is
//!    evaluated either analytically on register A alone — by default in
//!    batched form, one cached fused unitary per group applied to all
//!    samples in a single matrix–matrix product — or by simulating the
//!    full Fig. 2 circuit (the noisy path and cross-check oracle).
//! 7. **Ensemble statistics** ([`ensemble`], [`score`]): per-bucket
//!    absolute z-scores of the SWAP deviations, summed over groups and
//!    compression levels.
//!
//! ## Quickstart
//!
//! ```
//! use quorum_core::{QuorumConfig, QuorumDetector};
//! use qdata::Dataset;
//!
//! let mut rows: Vec<Vec<f64>> = (0..12)
//!     .map(|i| vec![2.0 + 0.02 * i as f64, 4.0, 1.0, 3.0, 2.5, 1.5, 3.5])
//!     .collect();
//! rows.push(vec![9.0, 0.5, 8.0, 0.1, 9.5, 0.2, 8.8]); // outlier
//! let data = Dataset::from_rows("readme", rows, None).unwrap();
//!
//! let detector = QuorumDetector::new(
//!     QuorumConfig::default()
//!         .with_ensemble_groups(8)
//!         .with_anomaly_rate_estimate(0.08),
//! ).unwrap();
//! let report = detector.score(&data).unwrap();
//! assert_eq!(report.ranking()[0], 12);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod ansatz;
pub mod bucket;
mod cache;
pub mod circuit;
pub mod config;
pub mod detector;
pub mod embed;
pub mod engine;
pub mod ensemble;
pub mod error;
pub mod features;
pub mod score;

pub use config::{EngineKind, ExecutionMode, Normalization, QuorumConfig};
pub use detector::QuorumDetector;
pub use engine::{
    AnalyticEngine, BatchedAnalyticEngine, CircuitEngine, DensityEngine, SampleDensityEngine,
    ScoringEngine,
};
pub use error::QuorumError;
pub use score::ScoreReport;
