//! Backend comparison on the actual Quorum sample circuit: exact branching
//! statevector vs density matrix vs Brisbane-noisy density matrix.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qsim::simulator::{Backend, DensityMatrixBackend, StatevectorBackend};
use qsim::NoiseModel;
use quorum_core::ansatz::AnsatzParams;
use quorum_core::circuit::build_sample_circuit;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quorum_circuit(reset_count: usize) -> qsim::Circuit {
    let mut rng = StdRng::seed_from_u64(9);
    let ansatz = AnsatzParams::random(3, 2, &mut rng);
    build_sample_circuit(
        &[0.11, 0.05, 0.09, 0.13, 0.02, 0.08, 0.1],
        &ansatz,
        reset_count,
    )
    .unwrap()
}

fn bench_backends(c: &mut Criterion) {
    let circ1 = quorum_circuit(1);
    let circ2 = quorum_circuit(2);
    let sv = StatevectorBackend::new();
    let dm = DensityMatrixBackend::new();
    let noisy = DensityMatrixBackend::with_noise(NoiseModel::brisbane());

    let mut group = c.benchmark_group("quorum_circuit_backends");
    group.sample_size(10);
    group.bench_function("statevector_branching_1reset", |b| {
        b.iter(|| black_box(sv.probabilities(&circ1).unwrap().marginal_one(0)))
    });
    group.bench_function("statevector_branching_2resets", |b| {
        b.iter(|| black_box(sv.probabilities(&circ2).unwrap().marginal_one(0)))
    });
    group.bench_function("density_matrix_ideal", |b| {
        b.iter(|| black_box(dm.probabilities(&circ1).unwrap().marginal_one(0)))
    });
    group.bench_function("density_matrix_brisbane", |b| {
        b.iter(|| black_box(noisy.probabilities(&circ1).unwrap().marginal_one(0)))
    });
    group.finish();
}

fn bench_shot_sampling(c: &mut Criterion) {
    let circ = quorum_circuit(1);
    let sv = StatevectorBackend::new();
    c.bench_function("sample_4096_shots", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(sv.run(&circ, 4096, seed).unwrap().marginal_one(0))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_backends, bench_shot_sampling
}
criterion_main!(benches);
