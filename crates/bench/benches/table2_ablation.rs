//! Criterion companion to the Table II experiment: times the bucket-size
//! sweep machinery (bucket planning + scoring at different probability
//! targets). Run the full experiment with
//! `cargo run -p quorum-bench --release --bin table2_bucket_ablation`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qdata::Dataset;
use quorum_bench::table1_specs;
use quorum_core::bucket::BucketPlan;
use quorum_core::{QuorumConfig, QuorumDetector};

fn bench_bucket_planning(c: &mut Criterion) {
    c.bench_function("table2_bucket_plan_assignments", |b| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let plan = BucketPlan::from_target(1000, 0.03, 0.75);
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(plan.assign(&mut rng)))
    });
}

fn bench_sweep_points(c: &mut Criterion) {
    let spec = &table1_specs()[3]; // power plant
    let full = spec.load(42);
    let rows = full.rows()[..80].to_vec();
    let labels = full.labels().map(|l| l[..80].to_vec());
    let ds = Dataset::from_rows("pp-80", rows, labels).unwrap();

    let mut group = c.benchmark_group("table2_sweep_point");
    group.sample_size(10);
    for &p in &[0.5f64, 0.75, 0.95] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            let detector = QuorumDetector::new(
                QuorumConfig::default()
                    .with_ensemble_groups(2)
                    .with_bucket_probability(p)
                    .with_anomaly_rate_estimate(spec.anomaly_rate())
                    .with_threads(1)
                    .with_seed(42),
            )
            .unwrap();
            b.iter(|| black_box(detector.score(&ds).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_bucket_planning, bench_sweep_points
}
criterion_main!(benches);
