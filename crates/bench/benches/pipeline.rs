//! End-to-end pipeline benchmarks: one ensemble group, the full detector,
//! and scaling in the number of ensemble groups.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qdata::synth;
use quorum_core::bucket::BucketPlan;
use quorum_core::ensemble::EnsembleGroup;
use quorum_core::{QuorumConfig, QuorumDetector};

fn small_dataset() -> qdata::Dataset {
    // A 64-sample slice of the power-plant generator keeps the benchmark
    // fast while exercising the real pipeline.
    let full = synth::power_plant(5);
    let rows: Vec<Vec<f64>> = full.rows()[..64].to_vec();
    qdata::Dataset::from_rows("pp-64", rows, None).unwrap()
}

fn bench_single_group(c: &mut Criterion) {
    let ds = small_dataset();
    let config = QuorumConfig::default()
        .with_ensemble_groups(1)
        .with_anomaly_rate_estimate(0.05)
        .with_seed(3);
    let plan = BucketPlan::from_target(ds.num_samples(), 0.05, 0.75);
    let normalized = qdata::preprocess::RangeNormalizer::fit_transform(&ds);
    c.bench_function("ensemble_group_64samples_2levels", |b| {
        let group = EnsembleGroup::generate(0, &config, ds.num_features(), &plan);
        b.iter(|| black_box(group.run(&normalized, &config).unwrap()))
    });
}

fn bench_detector_scaling(c: &mut Criterion) {
    let ds = small_dataset();
    let mut group = c.benchmark_group("detector_groups_scaling");
    group.sample_size(10);
    for &groups in &[1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(groups), &groups, |b, &g| {
            let detector = QuorumDetector::new(
                QuorumConfig::default()
                    .with_ensemble_groups(g)
                    .with_anomaly_rate_estimate(0.05)
                    .with_threads(1)
                    .with_seed(1),
            )
            .unwrap();
            b.iter(|| black_box(detector.score(&ds).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_single_group, bench_detector_scaling
}
criterion_main!(benches);
