//! Criterion companion to the Fig. 9 experiment: times the noiseless and
//! Brisbane-noisy scoring paths that generate the detection-rate curves.
//! Run the full experiment with
//! `cargo run -p quorum-bench --release --bin fig09_detection_curves`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qdata::Dataset;
use qmetrics::curve::{curve_auc, detection_rate_curve};
use qsim::NoiseModel;
use quorum_bench::table1_specs;
use quorum_core::{ExecutionMode, QuorumConfig, QuorumDetector};

fn small_labelled() -> Dataset {
    let spec = &table1_specs()[0];
    let full = spec.load(42);
    let rows = full.rows()[..48].to_vec();
    let labels = full.labels().map(|l| l[..48].to_vec());
    Dataset::from_rows("bc-48", rows, labels).unwrap()
}

fn config() -> QuorumConfig {
    QuorumConfig::default()
        .with_ensemble_groups(1)
        .with_anomaly_rate_estimate(0.05)
        .with_threads(1)
        .with_seed(7)
}

fn bench_noiseless_scoring(c: &mut Criterion) {
    let ds = small_labelled();
    let detector = QuorumDetector::new(config()).unwrap();
    c.bench_function("fig09_noiseless_48samples_1group", |b| {
        b.iter(|| black_box(detector.score(&ds).unwrap()))
    });
}

fn bench_noisy_scoring(c: &mut Criterion) {
    let ds = small_labelled();
    let detector = QuorumDetector::new(config().with_execution(ExecutionMode::Noisy {
        noise: NoiseModel::brisbane(),
        shots: None,
    }))
    .unwrap();
    let mut group = c.benchmark_group("fig09_noisy");
    group.sample_size(10);
    group.bench_function("48samples_1group_brisbane", |b| {
        b.iter(|| black_box(detector.score(&ds).unwrap()))
    });
    group.finish();
}

fn bench_curve_computation(c: &mut Criterion) {
    let ds = small_labelled();
    let detector = QuorumDetector::new(config()).unwrap();
    let report = detector.score(&ds).unwrap();
    let labels = ds.labels().unwrap().to_vec();
    c.bench_function("fig09_curve_and_auc", |b| {
        b.iter(|| {
            let curve = detection_rate_curve(report.scores(), &labels);
            black_box(curve_auc(&curve))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_noiseless_scoring, bench_noisy_scoring, bench_curve_computation
}
criterion_main!(benches);
