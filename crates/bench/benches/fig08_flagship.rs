//! Criterion companion to the Fig. 8 experiment: times a scaled-down
//! Quorum-vs-QNN comparison on truncated datasets so `cargo bench` covers
//! the flagship code path. Run the full experiment with
//! `cargo run -p quorum-bench --release --bin fig08_flagship`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qdata::Dataset;
use qnn_baseline::{train, TrainConfig};
use quorum_bench::table1_specs;
use quorum_core::{QuorumConfig, QuorumDetector};

/// Truncates a dataset to its first `n` samples, keeping labels.
fn truncate(ds: &Dataset, n: usize) -> Dataset {
    let rows = ds.rows()[..n].to_vec();
    let labels = ds.labels().map(|l| l[..n].to_vec());
    Dataset::from_rows(ds.name(), rows, labels).unwrap()
}

fn bench_quorum_per_dataset(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08_quorum_2groups_96samples");
    group.sample_size(10);
    for spec in table1_specs() {
        let ds = truncate(&spec.load(42), 96);
        group.bench_with_input(BenchmarkId::from_parameter(spec.name), &ds, |b, ds| {
            let detector = QuorumDetector::new(
                QuorumConfig::default()
                    .with_ensemble_groups(2)
                    .with_bucket_probability(spec.bucket_probability)
                    .with_anomaly_rate_estimate(spec.anomaly_rate())
                    .with_threads(1)
                    .with_seed(42),
            )
            .unwrap();
            b.iter(|| black_box(detector.score(ds).unwrap()))
        });
    }
    group.finish();
}

fn bench_qnn_training(c: &mut Criterion) {
    let spec = &table1_specs()[0];
    let ds = truncate(&spec.load(42), 96);
    let mut group = c.benchmark_group("fig08_qnn_train_96samples");
    group.sample_size(10);
    group.bench_function("2epochs", |b| {
        b.iter(|| {
            black_box(train(
                &ds,
                &TrainConfig {
                    epochs: 2,
                    seed: 42,
                    ..TrainConfig::default()
                },
            ))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_quorum_per_dataset, bench_qnn_training
}
criterion_main!(benches);
