//! Head-to-head of the scoring engines on the flagship pipeline
//! configuration (n = 3 data qubits, 30 ensemble groups): the batched
//! GEMM engine vs the per-sample analytic engine vs the paper-literal
//! circuit engine — plus a noisy column pitting the batched density
//! engine against the noisy circuit simulation and against its own
//! per-sample oracle, and a raw GEMM-kernel column pitting the
//! runtime-dispatched SIMD kernel against the scalar oracle — with direct
//! speedup reports. Acceptance bars on this configuration: batched ≥ 2×
//! the per-sample analytic engine, analytic ≥ 5× the circuit engine,
//! density ≥ 5× the noisy circuit engine, the fully-batched noisy path
//! (lockstep prep + batched score) ≥ 1.7× the per-sample oracle with the
//! lockstep prep stage alone ≥ 1.3× the per-sample gate walk, and (when
//! the SIMD kernel is active) the dispatched GEMM ≥ 2× the scalar kernel.
//! The noisy column is split into explicit `noisy_prep_ns_per_sample` and
//! `noisy_score_ns_per_sample` metrics via the engine's public prep/score
//! seam. A wide-register noisy column pits the structured per-gate
//! channel engine against the dense fused-superoperator engine at n = 5
//! (structured must win outright) and tracks the structured engine alone
//! at n = 6 (`structured_noisy_ns_per_sample`), a width the dense `16^n`
//! path cannot practically reach. A serving column streams the flagship
//! noisy workload through a frozen detector at coalescing batch sizes
//! 1/8/32 and requires the per-sample cost to fall as panels grow — the
//! win the cross-request batcher delivers to a long-lived server.
//!
//! Every reported number also lands in `BENCH_engines.json` (per-engine
//! ns/sample, kernel GFLOP/s, speedup ratios) so the perf trajectory is
//! machine-readable across PRs; override the path with the
//! `QUORUM_BENCH_JSON` env var.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qdata::Dataset;
use qsim::matrix::CMatrix;
use qsim::{NoiseModel, C64};
use quorum_bench::table1_specs;
use quorum_core::bucket::BucketPlan;
use quorum_core::engine::{
    DensityEngine, SampleDensityEngine, ScoringEngine, StructuredDensityEngine,
};
use quorum_core::ensemble::EnsembleGroup;
use quorum_core::{EngineKind, ExecutionMode, QuorumConfig, QuorumDetector};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const FLAGSHIP_GROUPS: usize = 30;
const FLAGSHIP_SAMPLES: usize = 96;
/// The noisy circuit oracle pays for a 7-qubit density simulation per
/// sample, so its column runs on a shorter slice of the same dataset.
const NOISY_SAMPLES: usize = 24;

/// Collected metrics for `BENCH_engines.json`, in insertion order.
static METRICS: Mutex<Vec<(&'static str, f64)>> = Mutex::new(Vec::new());

fn record(key: &'static str, value: f64) {
    METRICS.lock().expect("metrics registry").push((key, value));
}

fn truncate(ds: &Dataset, n: usize) -> Dataset {
    let rows = ds.rows()[..n].to_vec();
    let labels = ds.labels().map(|l| l[..n].to_vec());
    Dataset::from_rows(ds.name(), rows, labels).unwrap()
}

fn flagship_config(engine: EngineKind) -> QuorumConfig {
    let spec = &table1_specs()[0];
    QuorumConfig::default()
        .with_ensemble_groups(FLAGSHIP_GROUPS)
        .with_bucket_probability(spec.bucket_probability)
        .with_anomaly_rate_estimate(spec.anomaly_rate())
        .with_engine(engine)
        .with_threads(1)
        .with_seed(42)
}

fn flagship_dataset() -> Dataset {
    truncate(&table1_specs()[0].load(42), FLAGSHIP_SAMPLES)
}

fn bench_engines(c: &mut Criterion) {
    let ds = flagship_dataset();
    let mut group = c.benchmark_group("engine_flagship_n3_30groups");
    group.sample_size(10);
    for (label, kind) in [
        ("batched", EngineKind::Batched),
        ("analytic", EngineKind::Analytic),
        ("circuit", EngineKind::Circuit),
    ] {
        let detector = QuorumDetector::new(flagship_config(kind)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(label), &ds, |b, ds| {
            b.iter(|| black_box(detector.score(ds).unwrap()))
        });
    }
    group.finish();
}

/// Best-of-nine full-pipeline wall time through one engine (two warmups,
/// minimum of nine timed runs — the sub-millisecond engines need the
/// extra repetitions to shake off scheduling noise).
fn time_engine(ds: &Dataset, kind: EngineKind) -> Duration {
    let detector = QuorumDetector::new(flagship_config(kind)).unwrap();
    for _ in 0..2 {
        black_box(detector.score(ds).unwrap());
    }
    (0..9)
        .map(|_| {
            let start = Instant::now();
            black_box(detector.score(ds).unwrap());
            start.elapsed()
        })
        .min()
        .unwrap()
}

fn ns_per_sample(d: Duration, samples: usize) -> f64 {
    d.as_nanos() as f64 / samples as f64
}

/// Times the three engines directly and prints the speedup ratios the
/// acceptance criteria ask for.
fn report_speedup(_c: &mut Criterion) {
    let ds = flagship_dataset();
    let batched = time_engine(&ds, EngineKind::Batched);
    let analytic = time_engine(&ds, EngineKind::Analytic);
    let circuit = time_engine(&ds, EngineKind::Circuit);
    record(
        "batched_ns_per_sample",
        ns_per_sample(batched, FLAGSHIP_SAMPLES),
    );
    record(
        "analytic_ns_per_sample",
        ns_per_sample(analytic, FLAGSHIP_SAMPLES),
    );
    record(
        "circuit_ns_per_sample",
        ns_per_sample(circuit, FLAGSHIP_SAMPLES),
    );

    let batched_vs_analytic = analytic.as_secs_f64() / batched.as_secs_f64();
    let analytic_vs_circuit = circuit.as_secs_f64() / analytic.as_secs_f64();
    let batched_vs_circuit = circuit.as_secs_f64() / batched.as_secs_f64();
    record("batched_vs_analytic_speedup", batched_vs_analytic);
    record("analytic_vs_circuit_speedup", analytic_vs_circuit);
    record("batched_vs_circuit_speedup", batched_vs_circuit);
    println!(
        "engine_flagship_speedup                                  batched {batched:.2?} vs analytic {analytic:.2?} vs circuit {circuit:.2?}"
    );
    println!(
        "engine_flagship_speedup_ratios                           batched/analytic x{batched_vs_analytic:.1}  analytic/circuit x{analytic_vs_circuit:.1}  batched/circuit x{batched_vs_circuit:.1}"
    );
    assert!(
        batched_vs_analytic >= 2.0,
        "batched engine must be ≥2× the per-sample analytic engine on the flagship config, got ×{batched_vs_analytic:.2}"
    );
    assert!(
        analytic_vs_circuit >= 5.0,
        "analytic engine must be ≥5× faster than the circuit engine on the flagship config, got ×{analytic_vs_circuit:.1}"
    );
}

fn noisy_flagship_config(engine: EngineKind) -> QuorumConfig {
    flagship_config(engine).with_execution(ExecutionMode::Noisy {
        noise: NoiseModel::brisbane(),
        shots: None,
    })
}

/// Best-of-`runs` noisy full-pipeline wall time through one engine (one
/// warmup — the noisy circuit oracle is far too slow for the nine-run
/// protocol the sub-millisecond engines use).
fn time_noisy_engine(ds: &Dataset, kind: EngineKind, runs: usize) -> Duration {
    let detector = QuorumDetector::new(noisy_flagship_config(kind)).unwrap();
    black_box(detector.score(ds).unwrap());
    (0..runs)
        .map(|_| {
            let start = Instant::now();
            black_box(detector.score(ds).unwrap());
            start.elapsed()
        })
        .min()
        .unwrap()
}

/// The noisy column: the batched analytic density engine vs the
/// paper-literal noisy circuit simulation on the flagship n=3/30-group
/// configuration.
fn report_noisy_speedup(_c: &mut Criterion) {
    let ds = truncate(&table1_specs()[0].load(42), NOISY_SAMPLES);
    let density = time_noisy_engine(&ds, EngineKind::Density, 5);
    let circuit = time_noisy_engine(&ds, EngineKind::Circuit, 2);
    record(
        "density_ns_per_sample",
        ns_per_sample(density, NOISY_SAMPLES),
    );
    record(
        "noisy_circuit_ns_per_sample",
        ns_per_sample(circuit, NOISY_SAMPLES),
    );
    let density_vs_circuit = circuit.as_secs_f64() / density.as_secs_f64();
    record("density_vs_circuit_speedup", density_vs_circuit);
    println!(
        "engine_flagship_noisy_speedup                            density {density:.2?} vs circuit {circuit:.2?}"
    );
    println!(
        "engine_flagship_noisy_speedup_ratio                      density/circuit x{density_vs_circuit:.1}"
    );
    assert!(
        density_vs_circuit >= 5.0,
        "density engine must be ≥5× the noisy circuit engine on the flagship config, got ×{density_vs_circuit:.1}"
    );
}

/// Best-of-`runs` over one closure.
fn best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> Duration {
    (0..runs)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .min()
        .unwrap()
}

/// The fully-batched noisy path (lockstep prep + vec(ρ) GEMM scoring)
/// against the per-sample path, on isolated scoring: one flagship group,
/// caches (fused superoperators and the readout functional) pre-warmed, a
/// full 96-sample two-level deviation sweep per run — so the ratios
/// measure exactly what the batching changed, not the shared fusion cost.
/// The prep and score stages are also timed through the public
/// [`DensityEngine::prepare_batch`] / [`DensityEngine::score_prepared`]
/// seam, so `BENCH_engines.json` carries explicit
/// `noisy_prep_ns_per_sample` and `noisy_score_ns_per_sample` columns
/// instead of a single prep-inclusive number.
///
/// Calibration note: both paths execute the same channel arithmetic
/// (identical per-gate flop counts), so the lockstep win comes from
/// removing per-sample circuit construction/lowering and from
/// lane-contiguous kernels — measured ×~1.7 on prep and ×~2 end-to-end on
/// this shape (`4³` superoperators, 96-sample batches), not an
/// order-of-magnitude algorithmic gap. The asserts below pin those levels
/// with headroom for runner noise.
fn report_density_batch_speedup(_c: &mut Criterion) {
    let config = noisy_flagship_config(EngineKind::Density).with_ensemble_groups(1);
    // Feed the engines exactly what the production pipeline feeds them.
    let ds = quorum_core::detector::normalize_for_scoring(&config, &flagship_dataset());
    let levels = config.effective_compression_levels();
    let plan = BucketPlan::from_target(ds.num_samples(), 0.1, config.bucket_probability);
    let group = EnsembleGroup::generate(0, &config, ds.num_features(), &plan);

    // Warm every shared cache; both paths then score from identical state.
    let packed = DensityEngine::prepare_batch(&group, &ds, &config).unwrap();
    DensityEngine
        .deviations_all_levels(&group, &ds, &config, &levels)
        .unwrap();
    SampleDensityEngine
        .deviations_all_levels(&group, &ds, &config, &levels)
        .unwrap();

    // Stage split: lockstep prep alone, scoring alone (on a pre-built
    // panel), and the per-sample gate-walk prep it replaced.
    let prep = best_of(9, || {
        DensityEngine::prepare_batch(&group, &ds, &config).unwrap()
    });
    let score = best_of(9, || {
        DensityEngine::score_prepared(&group, &packed, &config, &levels).unwrap()
    });
    let prep_per_sample = best_of(5, || {
        SampleDensityEngine::prepare_batch(&group, &ds, &config).unwrap()
    });
    record(
        "noisy_prep_ns_per_sample",
        ns_per_sample(prep, FLAGSHIP_SAMPLES),
    );
    record(
        "noisy_score_ns_per_sample",
        ns_per_sample(score, FLAGSHIP_SAMPLES),
    );
    record(
        "noisy_prep_per_sample_walk_ns_per_sample",
        ns_per_sample(prep_per_sample, FLAGSHIP_SAMPLES),
    );
    let prep_speedup = prep_per_sample.as_secs_f64() / prep.as_secs_f64();
    record("noisy_prep_lockstep_vs_per_sample_speedup", prep_speedup);
    println!(
        "noisy_stage_split                                        prep {prep:.2?} + score {score:.2?} (per-sample prep {prep_per_sample:.2?}, lockstep x{prep_speedup:.1})"
    );

    let batched = best_of(9, || {
        DensityEngine
            .deviations_all_levels(&group, &ds, &config, &levels)
            .unwrap()
    });
    let per_sample = best_of(5, || {
        SampleDensityEngine
            .deviations_all_levels(&group, &ds, &config, &levels)
            .unwrap()
    });
    record(
        "density_batched_ns_per_sample",
        ns_per_sample(batched, FLAGSHIP_SAMPLES),
    );
    record(
        "density_per_sample_ns_per_sample",
        ns_per_sample(per_sample, FLAGSHIP_SAMPLES),
    );
    let speedup = per_sample.as_secs_f64() / batched.as_secs_f64();
    record("density_batched_vs_per_sample_speedup", speedup);
    println!(
        "density_batch_speedup                                    batched {batched:.2?} vs per-sample {per_sample:.2?}"
    );
    println!(
        "density_batch_speedup_ratio                              batched/per-sample x{speedup:.2}"
    );
    assert!(
        speedup >= 1.7,
        "end-to-end noisy scoring (lockstep prep + batched score) must be ≥1.7× the \
         per-sample path on the flagship config, got ×{speedup:.2}"
    );
    assert!(
        prep_speedup >= 1.3,
        "lockstep prep must be ≥1.3× the per-sample gate-walk prep on the flagship \
         config, got ×{prep_speedup:.2}"
    );
}

/// Data qubits for the wide-register head-to-head: the crossover width
/// where the structured per-gate channel walk must already beat the
/// dense fused-superoperator path.
const WIDE_DENSE_QUBITS: usize = 5;
/// Data qubits for the structured-only column — past the dense engine's
/// width cap on practicality (its n = 6 superoperator is ~268 MiB per
/// level and the 13-qubit observable walk takes minutes), so the
/// structured engine runs alone and its absolute time is the tracked
/// metric.
const WIDE_STRUCTURED_QUBITS: usize = 6;
/// Wide-register columns run on a short batch, like the noisy oracle.
const WIDE_SAMPLES: usize = 24;

/// Synthetic normalized dataset for the wide-register columns — the
/// Table 1 sets carry too few features for n ≥ 5 registers.
fn wide_dataset(features: usize, samples: usize) -> Dataset {
    let m = features as f64;
    let rows: Vec<Vec<f64>> = (0..samples)
        .map(|i| {
            (0..features)
                .map(|j| {
                    let t = (i * features + j) as f64;
                    (t * 0.6173).sin().abs() / m
                })
                .collect()
        })
        .collect();
    Dataset::from_rows("wide-noisy", rows, None).unwrap()
}

fn wide_noisy_config(data_qubits: usize, engine: EngineKind) -> QuorumConfig {
    QuorumConfig::default()
        .with_data_qubits(data_qubits)
        .with_ensemble_groups(1)
        .with_engine(engine)
        .with_threads(1)
        .with_seed(42)
        .with_execution(ExecutionMode::Noisy {
            noise: NoiseModel::brisbane(),
            shots: None,
        })
}

/// The wide-register noisy column: structured per-gate channel scoring
/// vs the dense fused-superoperator engine at n = 5 (where the `16^n`
/// wall starts to bite — the structured path must already win), plus
/// the structured engine alone at n = 6, a width the dense path cannot
/// practically reach. Caches (fused superoperators, channel programs,
/// the dense readout functional) are pre-warmed so the ratios measure
/// steady-state scoring, and both engines share the identical lockstep
/// batch preparation.
fn report_structured_noisy(_c: &mut Criterion) {
    let levels = vec![1usize, 2];

    // n = 5 head-to-head.
    let config = wide_noisy_config(WIDE_DENSE_QUBITS, EngineKind::Density);
    let structured_config = wide_noisy_config(WIDE_DENSE_QUBITS, EngineKind::DensityStructured);
    let raw = wide_dataset(config.features_per_circuit(), WIDE_SAMPLES);
    let ds = quorum_core::detector::normalize_for_scoring(&config, &raw);
    let plan = BucketPlan::from_target(ds.num_samples(), 0.1, config.bucket_probability);
    let group = EnsembleGroup::generate(0, &config, ds.num_features(), &plan);
    let dense_devs = DensityEngine
        .deviations_all_levels(&group, &ds, &config, &levels)
        .unwrap();
    let structured_devs = StructuredDensityEngine
        .deviations_all_levels(&group, &ds, &structured_config, &levels)
        .unwrap();
    for (d, s) in dense_devs
        .iter()
        .flatten()
        .zip(structured_devs.iter().flatten())
    {
        assert!(
            (d - s).abs() <= 1e-9,
            "structured and dense engines diverged at n={WIDE_DENSE_QUBITS}: {d} vs {s}"
        );
    }
    let dense = best_of(3, || {
        DensityEngine
            .deviations_all_levels(&group, &ds, &config, &levels)
            .unwrap()
    });
    let structured = best_of(3, || {
        StructuredDensityEngine
            .deviations_all_levels(&group, &ds, &structured_config, &levels)
            .unwrap()
    });
    record("dense_n5_ns_per_sample", ns_per_sample(dense, WIDE_SAMPLES));
    record(
        "structured_n5_ns_per_sample",
        ns_per_sample(structured, WIDE_SAMPLES),
    );
    let speedup = dense.as_secs_f64() / structured.as_secs_f64();
    record("structured_vs_dense_n5_speedup", speedup);
    println!(
        "structured_noisy_n5                                      structured {structured:.2?} vs dense {dense:.2?} (x{speedup:.2})"
    );
    assert!(
        speedup >= 1.0,
        "the structured engine must beat the dense engine at n={WIDE_DENSE_QUBITS} on the \
         flagship noisy config, got ×{speedup:.2}"
    );

    // n = 6, structured only — the width the 16^n wall used to fence off.
    let config6 = wide_noisy_config(WIDE_STRUCTURED_QUBITS, EngineKind::DensityStructured);
    let raw6 = wide_dataset(config6.features_per_circuit(), WIDE_SAMPLES);
    let ds6 = quorum_core::detector::normalize_for_scoring(&config6, &raw6);
    let plan6 = BucketPlan::from_target(ds6.num_samples(), 0.1, config6.bucket_probability);
    let group6 = EnsembleGroup::generate(0, &config6, ds6.num_features(), &plan6);
    let devs6 = StructuredDensityEngine
        .deviations_all_levels(&group6, &ds6, &config6, &levels)
        .unwrap();
    assert!(
        devs6.iter().flatten().all(|d| (0.0..=1.0).contains(d)),
        "n={WIDE_STRUCTURED_QUBITS} structured deviations must be probabilities"
    );
    let structured6 = best_of(3, || {
        StructuredDensityEngine
            .deviations_all_levels(&group6, &ds6, &config6, &levels)
            .unwrap()
    });
    record(
        "structured_noisy_ns_per_sample",
        ns_per_sample(structured6, WIDE_SAMPLES),
    );
    println!(
        "structured_noisy_n6                                      structured {structured6:.2?} ({WIDE_SAMPLES} samples, {} levels)",
        levels.len()
    );
}

/// Deterministic dense test matrix for the raw kernel column.
fn dense(rows: usize, cols: usize, salt: u64) -> CMatrix {
    let mut m = CMatrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            let t = (i * cols + j) as f64 + salt as f64 * 0.37;
            m[(i, j)] = C64::new((t * 0.7311).sin(), (t * 1.1931).cos());
        }
    }
    m
}

/// Times one GEMM closure: repeats it enough to clear timer noise and
/// returns the best per-product time.
fn time_gemm(reps: usize, mut f: impl FnMut() -> CMatrix) -> Duration {
    black_box(f());
    (0..9)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..reps {
                black_box(f());
            }
            start.elapsed() / reps as u32
        })
        .min()
        .unwrap()
}

/// The raw GEMM-kernel column on the flagship shapes: the `4³ × 4³`
/// fused-superoperator product over a 96-sample batch (the batched
/// density hot path) and the `2³ × 2³` encoder product (the batched
/// pure-state hot path), dispatched kernel vs scalar oracle, with
/// GFLOP/s throughputs (8 real flops per complex multiply–add).
fn report_gemm_kernel(_c: &mut Criterion) {
    let simd = qsim::kernel::simd_active();
    record("simd_active", if simd { 1.0 } else { 0.0 });

    // Flagship density GEMM: 64×64 · 64×96.
    let a = dense(64, 64, 1);
    let b = dense(64, 96, 2);
    let scalar = time_gemm(200, || a.matmul_scalar(&b).unwrap());
    let dispatch = time_gemm(200, || a.matmul(&b).unwrap());
    let flops = 8.0 * 64.0 * 64.0 * 96.0;
    let scalar_gflops = flops / scalar.as_secs_f64() / 1e9;
    let dispatch_gflops = flops / dispatch.as_secs_f64() / 1e9;
    let speedup = scalar.as_secs_f64() / dispatch.as_secs_f64();
    record("gemm_scalar_gflops", scalar_gflops);
    record("gemm_simd_gflops", dispatch_gflops);
    record("gemm_simd_vs_scalar_speedup", speedup);
    println!(
        "gemm_kernel_flagship_64x64x96                            scalar {scalar_gflops:.2} GFLOP/s vs dispatch {dispatch_gflops:.2} GFLOP/s (x{speedup:.2})"
    );

    // Flagship encoder GEMM: 8×8 · 8×96 (reported, not asserted — the
    // shape is too small for lane parallelism to dominate fixed costs).
    let ae = dense(8, 8, 3);
    let be = dense(8, 96, 4);
    let scalar_e = time_gemm(2000, || ae.matmul_scalar(&be).unwrap());
    let dispatch_e = time_gemm(2000, || ae.matmul(&be).unwrap());
    let encoder_speedup = scalar_e.as_secs_f64() / dispatch_e.as_secs_f64();
    record("gemm_encoder_simd_vs_scalar_speedup", encoder_speedup);
    println!(
        "gemm_kernel_flagship_8x8x96                              scalar {scalar_e:.2?} vs dispatch {dispatch_e:.2?} (x{encoder_speedup:.2})"
    );

    if simd {
        assert!(
            speedup >= 2.0,
            "the SIMD GEMM kernel must be ≥2× the scalar oracle on the flagship 64×64·64×96 product, got ×{speedup:.2}"
        );
    } else {
        println!(
            "gemm_kernel_simd_assert                                  skipped (SIMD kernel inactive: build with --features simd on AVX2/FMA hardware)"
        );
    }
}

/// Coalescing batch sizes for the serving-throughput column.
const SERVE_BATCHES: [usize; 3] = [1, 8, 32];
/// Groups for the serving column — enough work per panel for the batched
/// engine seams to matter, small enough for a best-of protocol.
const SERVE_GROUPS: usize = 8;

/// The serving-throughput column: sustained streamed scoring through a
/// frozen noisy detector at coalescing batch sizes 1, 8 and 32. The
/// per-sample cost must fall as the coalescing window admits bigger
/// panels — that drop is exactly what the cross-request batcher buys a
/// long-lived server, since every panel runs once through the batched
/// `prepare_batch`/`score_prepared` and `deviations_all_levels` seams
/// instead of per-sample. Scores are batch-invariant (pinned by the
/// serve crate's tests), so the sizes here only move throughput.
fn report_serve_throughput(_c: &mut Criterion) {
    let config = noisy_flagship_config(EngineKind::Density).with_ensemble_groups(SERVE_GROUPS);
    let ds = flagship_dataset();
    let frozen = quorum_serve::FrozenDetector::freeze(config, &ds).unwrap();
    let rows = ds.strip_labels().rows().to_vec();

    let mut per_sample_ns = Vec::new();
    for &batch in &SERVE_BATCHES {
        // Warm up, then best-of-5 sweeps of the whole stream in
        // `batch`-sized coalesced panels with stable running ids.
        let sweep = |rows: &[Vec<f64>]| {
            let mut next_id = 0u64;
            for chunk in rows.chunks(batch) {
                black_box(frozen.score_samples(chunk, next_id).unwrap());
                next_id += chunk.len() as u64;
            }
        };
        sweep(&rows);
        let elapsed = best_of(5, || sweep(&rows));
        let ns = ns_per_sample(elapsed, rows.len());
        per_sample_ns.push(ns);
        let throughput = rows.len() as f64 / elapsed.as_secs_f64();
        match batch {
            1 => record("serve_batch1_ns_per_sample", ns),
            8 => record("serve_batch8_ns_per_sample", ns),
            _ => {
                record("serve_batch32_ns_per_sample", ns);
                record("serve_batch32_samples_per_sec", throughput);
            }
        }
        println!(
            "serve_throughput_batch{batch:<2}                                   {ns:.0} ns/sample ({throughput:.0} samples/s)"
        );
    }
    let coalescing_gain = per_sample_ns[0] / per_sample_ns[2];
    record(
        "serve_coalescing_batch32_vs_batch1_speedup",
        coalescing_gain,
    );
    println!(
        "serve_throughput_coalescing_gain                         batch32/batch1 x{coalescing_gain:.2}"
    );
    assert!(
        per_sample_ns[2] < per_sample_ns[1] && per_sample_ns[1] < per_sample_ns[0],
        "per-sample cost must fall as the coalescing batch grows, got {per_sample_ns:?} ns"
    );

    // Pooled steady state: one warm batch-32 panel scored repeatedly.
    // After warm-up the thread-local panel, density scratch and GEMM
    // buffers are all resident (pinned by the serve crate's
    // alloc-discipline test), so this column isolates the zero-copy
    // request path the server runs per coalesced panel — no per-sweep
    // chunking or tail batches.
    let batch: Vec<Vec<f64>> = rows.iter().take(32).cloned().collect();
    frozen.score_samples(&batch, 0).unwrap();
    const POOLED_REPS: usize = 8;
    let elapsed = best_of(5, || {
        for _ in 0..POOLED_REPS {
            black_box(frozen.score_samples(&batch, 0).unwrap());
        }
    });
    let pooled_ns = ns_per_sample(elapsed, batch.len() * POOLED_REPS);
    let pooled_throughput = (batch.len() * POOLED_REPS) as f64 / elapsed.as_secs_f64();
    record("serve_pooled_batch32_ns_per_sample", pooled_ns);
    record("serve_pooled_batch32_samples_per_sec", pooled_throughput);
    let pooled_gain = per_sample_ns[0] / pooled_ns;
    record("serve_pooled_vs_batch1_speedup", pooled_gain);
    println!(
        "serve_pooled_batch32                                     {pooled_ns:.0} ns/sample ({pooled_throughput:.0} samples/s, x{pooled_gain:.2} vs batch1)"
    );
}

/// Sharded serving scaling on the flagship noisy config: the same frozen
/// detector behind a `ShardedScorer` with K worker shards, swept in
/// batch-32 coalesced panels. Reports `serve_sharded{K}_ns_per_sample`
/// (plus sustained samples/sec for K ≥ 2). The scaling assertion only
/// arms on multi-core hosts — on a single core the shard workers time-
/// slice one CPU and K > 1 can only add handoff overhead.
fn report_serve_sharded(_c: &mut Criterion) {
    let config = noisy_flagship_config(EngineKind::Density).with_ensemble_groups(SERVE_GROUPS);
    let ds = flagship_dataset();
    let frozen = std::sync::Arc::new(quorum_serve::FrozenDetector::freeze(config, &ds).unwrap());
    let rows = ds.strip_labels().rows().to_vec();
    const SWEEP_BATCH: usize = 32;

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut per_shard_ns = Vec::new();
    for &k in &[1usize, 2, 4] {
        let sharded = quorum_serve::ShardedScorer::new(
            std::sync::Arc::clone(&frozen),
            &quorum_serve::ShardPolicy::Workers(k),
        )
        .unwrap();
        let sweep = |rows: &[Vec<f64>]| {
            let mut next_id = 0u64;
            for chunk in rows.chunks(SWEEP_BATCH) {
                black_box(sharded.score_samples(chunk, next_id).unwrap());
                next_id += chunk.len() as u64;
            }
        };
        sweep(&rows);
        let elapsed = best_of(5, || sweep(&rows));
        let ns = ns_per_sample(elapsed, rows.len());
        let throughput = rows.len() as f64 / elapsed.as_secs_f64();
        per_shard_ns.push(ns);
        match k {
            1 => record("serve_sharded1_ns_per_sample", ns),
            2 => {
                record("serve_sharded2_ns_per_sample", ns);
                record("serve_sharded2_samples_per_sec", throughput);
            }
            _ => {
                record("serve_sharded4_ns_per_sample", ns);
                record("serve_sharded4_samples_per_sec", throughput);
            }
        }
        println!(
            "serve_sharded_k{k}                                          {ns:.0} ns/sample ({throughput:.0} samples/s)"
        );
    }
    let scaling = per_shard_ns[0] / per_shard_ns[1];
    record("serve_sharded_k2_vs_k1_speedup", scaling);
    println!(
        "serve_sharded_scaling                                    K2/K1 x{scaling:.2} on {cores} core(s)"
    );
    if cores >= 2 {
        assert!(
            scaling > 1.05,
            "sharded serving must scale past one worker on a {cores}-core host, got x{scaling:.2}"
        );
    } else {
        println!(
            "serve_sharded_scaling_note                               single core: scaling assert skipped"
        );
    }
}

/// Writes every recorded metric to `BENCH_engines.json` (override the
/// path with `QUORUM_BENCH_JSON`) so CI and future PRs can track the
/// perf trajectory without scraping bench stdout.
fn emit_bench_json(_c: &mut Criterion) {
    let path =
        std::env::var("QUORUM_BENCH_JSON").unwrap_or_else(|_| "BENCH_engines.json".to_string());
    let metrics = METRICS.lock().expect("metrics registry");
    let mut json = String::from("{\n");
    json.push_str("  \"config\": {\n");
    json.push_str(&format!(
        "    \"data_qubits\": 3,\n    \"ensemble_groups\": {FLAGSHIP_GROUPS},\n"
    ));
    json.push_str(&format!(
        "    \"samples\": {FLAGSHIP_SAMPLES},\n    \"noisy_samples\": {NOISY_SAMPLES}\n  }},\n"
    ));
    json.push_str("  \"metrics\": {\n");
    for (idx, (key, value)) in metrics.iter().enumerate() {
        let sep = if idx + 1 == metrics.len() { "" } else { "," };
        json.push_str(&format!("    \"{key}\": {value:.3}{sep}\n"));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&path, &json).expect("write bench JSON");
    println!("bench_json                                               wrote {path}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engines, report_speedup, report_noisy_speedup,
        report_density_batch_speedup, report_structured_noisy,
        report_gemm_kernel, report_serve_throughput, report_serve_sharded,
        emit_bench_json
}
criterion_main!(benches);
