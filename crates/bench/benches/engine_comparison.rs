//! Head-to-head of the scoring engines on the flagship pipeline
//! configuration (n = 3 data qubits, 30 ensemble groups): the analytic
//! reduced-register engine vs the paper-literal circuit engine, plus a
//! direct speedup report. The acceptance bar for the analytic engine is
//! ≥ 5× on this configuration.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qdata::Dataset;
use quorum_bench::table1_specs;
use quorum_core::{EngineKind, QuorumConfig, QuorumDetector};
use std::time::Instant;

const FLAGSHIP_GROUPS: usize = 30;
const FLAGSHIP_SAMPLES: usize = 96;

fn truncate(ds: &Dataset, n: usize) -> Dataset {
    let rows = ds.rows()[..n].to_vec();
    let labels = ds.labels().map(|l| l[..n].to_vec());
    Dataset::from_rows(ds.name(), rows, labels).unwrap()
}

fn flagship_config(engine: EngineKind) -> QuorumConfig {
    let spec = &table1_specs()[0];
    QuorumConfig::default()
        .with_ensemble_groups(FLAGSHIP_GROUPS)
        .with_bucket_probability(spec.bucket_probability)
        .with_anomaly_rate_estimate(spec.anomaly_rate())
        .with_engine(engine)
        .with_threads(1)
        .with_seed(42)
}

fn flagship_dataset() -> Dataset {
    truncate(&table1_specs()[0].load(42), FLAGSHIP_SAMPLES)
}

fn bench_engines(c: &mut Criterion) {
    let ds = flagship_dataset();
    let mut group = c.benchmark_group("engine_flagship_n3_30groups");
    group.sample_size(10);
    for (label, kind) in [
        ("analytic", EngineKind::Analytic),
        ("circuit", EngineKind::Circuit),
    ] {
        let detector = QuorumDetector::new(flagship_config(kind)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(label), &ds, |b, ds| {
            b.iter(|| black_box(detector.score(ds).unwrap()))
        });
    }
    group.finish();
}

/// Times both engines directly and prints the speedup ratio the
/// acceptance criterion asks for.
fn report_speedup(_c: &mut Criterion) {
    let ds = flagship_dataset();
    let time_engine = |kind: EngineKind| {
        let detector = QuorumDetector::new(flagship_config(kind)).unwrap();
        // Warm up once, then take the best of three.
        black_box(detector.score(&ds).unwrap());
        (0..3)
            .map(|_| {
                let start = Instant::now();
                black_box(detector.score(&ds).unwrap());
                start.elapsed()
            })
            .min()
            .unwrap()
    };
    let analytic = time_engine(EngineKind::Analytic);
    let circuit = time_engine(EngineKind::Circuit);
    let speedup = circuit.as_secs_f64() / analytic.as_secs_f64();
    println!(
        "engine_flagship_speedup                                  analytic {analytic:.2?} vs circuit {circuit:.2?} => x{speedup:.1}"
    );
    assert!(
        speedup >= 5.0,
        "analytic engine must be ≥5× faster on the flagship config, got ×{speedup:.1}"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engines, report_speedup
}
criterion_main!(benches);
