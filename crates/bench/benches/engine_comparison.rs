//! Head-to-head of the scoring engines on the flagship pipeline
//! configuration (n = 3 data qubits, 30 ensemble groups): the batched
//! GEMM engine vs the per-sample analytic engine vs the paper-literal
//! circuit engine — plus a noisy column pitting the analytic density
//! engine against the noisy circuit simulation — with direct speedup
//! reports. Acceptance bars on this configuration: batched ≥ 2× the
//! per-sample analytic engine, analytic ≥ 5× the circuit engine, and
//! density ≥ 5× the noisy circuit engine.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qdata::Dataset;
use qsim::NoiseModel;
use quorum_bench::table1_specs;
use quorum_core::{EngineKind, ExecutionMode, QuorumConfig, QuorumDetector};
use std::time::{Duration, Instant};

const FLAGSHIP_GROUPS: usize = 30;
const FLAGSHIP_SAMPLES: usize = 96;
/// The noisy circuit oracle pays for a 7-qubit density simulation per
/// sample, so its column runs on a shorter slice of the same dataset.
const NOISY_SAMPLES: usize = 24;

fn truncate(ds: &Dataset, n: usize) -> Dataset {
    let rows = ds.rows()[..n].to_vec();
    let labels = ds.labels().map(|l| l[..n].to_vec());
    Dataset::from_rows(ds.name(), rows, labels).unwrap()
}

fn flagship_config(engine: EngineKind) -> QuorumConfig {
    let spec = &table1_specs()[0];
    QuorumConfig::default()
        .with_ensemble_groups(FLAGSHIP_GROUPS)
        .with_bucket_probability(spec.bucket_probability)
        .with_anomaly_rate_estimate(spec.anomaly_rate())
        .with_engine(engine)
        .with_threads(1)
        .with_seed(42)
}

fn flagship_dataset() -> Dataset {
    truncate(&table1_specs()[0].load(42), FLAGSHIP_SAMPLES)
}

fn bench_engines(c: &mut Criterion) {
    let ds = flagship_dataset();
    let mut group = c.benchmark_group("engine_flagship_n3_30groups");
    group.sample_size(10);
    for (label, kind) in [
        ("batched", EngineKind::Batched),
        ("analytic", EngineKind::Analytic),
        ("circuit", EngineKind::Circuit),
    ] {
        let detector = QuorumDetector::new(flagship_config(kind)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(label), &ds, |b, ds| {
            b.iter(|| black_box(detector.score(ds).unwrap()))
        });
    }
    group.finish();
}

/// Best-of-nine full-pipeline wall time through one engine (two warmups,
/// minimum of nine timed runs — the sub-millisecond engines need the
/// extra repetitions to shake off scheduling noise).
fn time_engine(ds: &Dataset, kind: EngineKind) -> Duration {
    let detector = QuorumDetector::new(flagship_config(kind)).unwrap();
    for _ in 0..2 {
        black_box(detector.score(ds).unwrap());
    }
    (0..9)
        .map(|_| {
            let start = Instant::now();
            black_box(detector.score(ds).unwrap());
            start.elapsed()
        })
        .min()
        .unwrap()
}

/// Times the three engines directly and prints the speedup ratios the
/// acceptance criteria ask for.
fn report_speedup(_c: &mut Criterion) {
    let ds = flagship_dataset();
    let batched = time_engine(&ds, EngineKind::Batched);
    let analytic = time_engine(&ds, EngineKind::Analytic);
    let circuit = time_engine(&ds, EngineKind::Circuit);

    let batched_vs_analytic = analytic.as_secs_f64() / batched.as_secs_f64();
    let analytic_vs_circuit = circuit.as_secs_f64() / analytic.as_secs_f64();
    let batched_vs_circuit = circuit.as_secs_f64() / batched.as_secs_f64();
    println!(
        "engine_flagship_speedup                                  batched {batched:.2?} vs analytic {analytic:.2?} vs circuit {circuit:.2?}"
    );
    println!(
        "engine_flagship_speedup_ratios                           batched/analytic x{batched_vs_analytic:.1}  analytic/circuit x{analytic_vs_circuit:.1}  batched/circuit x{batched_vs_circuit:.1}"
    );
    assert!(
        batched_vs_analytic >= 2.0,
        "batched engine must be ≥2× the per-sample analytic engine on the flagship config, got ×{batched_vs_analytic:.2}"
    );
    assert!(
        analytic_vs_circuit >= 5.0,
        "analytic engine must be ≥5× faster than the circuit engine on the flagship config, got ×{analytic_vs_circuit:.1}"
    );
}

fn noisy_flagship_config(engine: EngineKind) -> QuorumConfig {
    flagship_config(engine).with_execution(ExecutionMode::Noisy {
        noise: NoiseModel::brisbane(),
        shots: None,
    })
}

/// Best-of-`runs` noisy full-pipeline wall time through one engine (one
/// warmup — the noisy circuit oracle is far too slow for the nine-run
/// protocol the sub-millisecond engines use).
fn time_noisy_engine(ds: &Dataset, kind: EngineKind, runs: usize) -> Duration {
    let detector = QuorumDetector::new(noisy_flagship_config(kind)).unwrap();
    black_box(detector.score(ds).unwrap());
    (0..runs)
        .map(|_| {
            let start = Instant::now();
            black_box(detector.score(ds).unwrap());
            start.elapsed()
        })
        .min()
        .unwrap()
}

/// The noisy column: the analytic density engine vs the paper-literal
/// noisy circuit simulation on the flagship n=3/30-group configuration.
fn report_noisy_speedup(_c: &mut Criterion) {
    let ds = truncate(&table1_specs()[0].load(42), NOISY_SAMPLES);
    let density = time_noisy_engine(&ds, EngineKind::Density, 5);
    let circuit = time_noisy_engine(&ds, EngineKind::Circuit, 2);
    let density_vs_circuit = circuit.as_secs_f64() / density.as_secs_f64();
    println!(
        "engine_flagship_noisy_speedup                            density {density:.2?} vs circuit {circuit:.2?}"
    );
    println!(
        "engine_flagship_noisy_speedup_ratio                      density/circuit x{density_vs_circuit:.1}"
    );
    assert!(
        density_vs_circuit >= 5.0,
        "density engine must be ≥5× the noisy circuit engine on the flagship config, got ×{density_vs_circuit:.1}"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engines, report_speedup, report_noisy_speedup
}
criterion_main!(benches);
