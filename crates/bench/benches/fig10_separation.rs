//! Criterion companion to the Fig. 10 experiment: times scoring plus the
//! sorted-separation extraction on the breast-cancer dataset. Run the full
//! experiment with `cargo run -p quorum-bench --release --bin fig10_separation`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qdata::Dataset;
use quorum_bench::table1_specs;
use quorum_core::{QuorumConfig, QuorumDetector};

fn bench_separation(c: &mut Criterion) {
    let spec = table1_specs()
        .into_iter()
        .find(|s| s.name == "breast-cancer")
        .unwrap();
    let full = spec.load(42);
    let rows = full.rows()[..96].to_vec();
    let labels = full.labels().map(|l| l[..96].to_vec());
    let ds = Dataset::from_rows("bc-96", rows, labels).unwrap();
    let detector = QuorumDetector::new(
        QuorumConfig::default()
            .with_ensemble_groups(2)
            .with_bucket_probability(spec.bucket_probability)
            .with_anomaly_rate_estimate(spec.anomaly_rate())
            .with_threads(1)
            .with_seed(42),
    )
    .unwrap();
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("score_and_sort_96samples_2groups", |b| {
        b.iter(|| {
            let report = detector.score(&ds).unwrap();
            black_box(report.sorted_with_labels(ds.labels().unwrap()))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_separation
}
criterion_main!(benches);
