//! Microbenchmarks of the simulation substrate: statevector gate kernels,
//! state preparation, transpilation, and the SWAP-test circuit.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qsim::circuit::Circuit;
use qsim::gate::Gate;
use qsim::simulator::{Backend, StatevectorBackend};
use qsim::stateprep::prepare_real_amplitudes;
use qsim::statevector::Statevector;
use qsim::transpile;

fn bench_gate_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_gates");
    for &n in &[7usize, 10, 14] {
        group.bench_with_input(BenchmarkId::new("h_all_qubits", n), &n, |b, &n| {
            let mut sv = Statevector::new(n);
            b.iter(|| {
                for q in 0..n {
                    sv.apply_gate(Gate::H, &[q]).unwrap();
                }
                black_box(sv.amplitude(0))
            });
        });
        group.bench_with_input(BenchmarkId::new("cx_chain", n), &n, |b, &n| {
            let mut sv = Statevector::new(n);
            sv.apply_gate(Gate::H, &[0]).unwrap();
            b.iter(|| {
                for q in 0..n - 1 {
                    sv.apply_gate(Gate::CX, &[q, q + 1]).unwrap();
                }
                black_box(sv.amplitude(0))
            });
        });
        group.bench_with_input(BenchmarkId::new("rz_all_qubits", n), &n, |b, &n| {
            let mut sv = Statevector::new(n);
            b.iter(|| {
                for q in 0..n {
                    sv.apply_gate(Gate::RZ(0.31), &[q]).unwrap();
                }
                black_box(sv.amplitude(0))
            });
        });
    }
    group.finish();
}

fn bench_state_prep(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_preparation");
    for &n in &[3usize, 5, 7] {
        let amps: Vec<f64> = (0..(1 << n)).map(|i| (i + 1) as f64).collect();
        group.bench_with_input(BenchmarkId::new("moettoenen_build", n), &n, |b, _| {
            b.iter(|| black_box(prepare_real_amplitudes(n, &amps).unwrap()));
        });
    }
    group.finish();
}

fn bench_transpile(c: &mut Criterion) {
    let mut qc = Circuit::new(7);
    for q in 0..3 {
        qc.ry(0.3 + q as f64, q);
    }
    qc.cswap(6, 0, 3).cswap(6, 1, 4).cswap(6, 2, 5);
    c.bench_function("transpile_to_native_swap_test", |b| {
        b.iter(|| black_box(transpile::to_native(&qc)))
    });
}

fn bench_swap_test(c: &mut Criterion) {
    let mut qc = Circuit::with_clbits(7, 1);
    qc.ry(0.4, 0).ry(0.9, 3).h(6);
    for q in 0..3 {
        qc.cswap(6, q, q + 3);
    }
    qc.h(6).measure(6, 0);
    let backend = StatevectorBackend::new();
    c.bench_function("swap_test_7q_exact", |b| {
        b.iter(|| black_box(backend.probabilities(&qc).unwrap().marginal_one(0)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gate_kernels, bench_state_prep, bench_transpile, bench_swap_test
}
criterion_main!(benches);
