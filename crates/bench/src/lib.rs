//! # quorum-bench — experiment harness for the Quorum reproduction
//!
//! Shared plumbing for the per-figure/per-table binaries (`src/bin/`) and
//! the Criterion performance benches (`benches/`): the Table I dataset
//! registry, detector/baseline runners, and plain-text table rendering.
//!
//! Every binary accepts `--groups N`, `--noisy-groups N` and `--seed S`
//! overrides so the paper-scale configuration (1,000 ensemble members) can
//! be requested explicitly; defaults are sized to finish in minutes on a
//! laptop while preserving the papers' qualitative shapes.

#![warn(missing_docs)]

use qdata::{synth, Dataset};
use qmetrics::confusion::ConfusionMatrix;
use qnn_baseline::{train, TrainConfig, TrainedQnn};
use quorum_core::{ExecutionMode, QuorumConfig, QuorumDetector, ScoreReport};

/// One Table I dataset: generator name, bucket-probability target and the
/// documented anomaly count (used as the rate prior, as the paper's
/// Table I does).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Registry name (`qdata::synth::by_name`).
    pub name: &'static str,
    /// Display name used in the paper's figures.
    pub display: &'static str,
    /// Table I bucket-probability target.
    pub bucket_probability: f64,
    /// Documented anomaly count (Table I).
    pub anomalies: usize,
    /// Documented sample count (Table I).
    pub samples: usize,
}

impl DatasetSpec {
    /// The anomaly-rate prior for bucket sizing.
    pub fn anomaly_rate(&self) -> f64 {
        self.anomalies as f64 / self.samples as f64
    }

    /// Generates the dataset with the given seed.
    pub fn load(&self, seed: u64) -> Dataset {
        synth::by_name(self.name, seed).expect("registered dataset")
    }
}

/// The four evaluation datasets with their Table I parameters.
pub fn table1_specs() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "breast-cancer",
            display: "Breast Cancer",
            bucket_probability: 0.75,
            anomalies: 10,
            samples: 367,
        },
        DatasetSpec {
            name: "pen-global",
            display: "Pen",
            bucket_probability: 0.6,
            anomalies: 90,
            samples: 809,
        },
        DatasetSpec {
            name: "letter",
            display: "Letter",
            bucket_probability: 0.95,
            anomalies: 33,
            samples: 533,
        },
        DatasetSpec {
            name: "power-plant",
            display: "Power Plant",
            bucket_probability: 0.75,
            anomalies: 30,
            samples: 1000,
        },
    ]
}

/// Builds the paper-faithful Quorum configuration for a dataset spec.
///
/// Engine selection is `Auto`: noiseless runs use the analytic
/// reduced-register engine, noisy runs fall back to the circuit engine.
pub fn quorum_config(spec: &DatasetSpec, groups: usize, seed: u64) -> QuorumConfig {
    QuorumConfig::default()
        .with_ensemble_groups(groups)
        .with_bucket_probability(spec.bucket_probability)
        .with_anomaly_rate_estimate(spec.anomaly_rate())
        .with_seed(seed)
}

/// Runs Quorum on a dataset in the given execution mode.
///
/// # Panics
///
/// Panics on configuration or simulation failure (experiment harness).
pub fn run_quorum(
    data: &Dataset,
    spec: &DatasetSpec,
    groups: usize,
    seed: u64,
    mode: ExecutionMode,
) -> ScoreReport {
    let config = quorum_config(spec, groups, seed).with_execution(mode);
    let detector = QuorumDetector::new(config).expect("valid config");
    detector.score(data).expect("scoring succeeds")
}

/// Trains the supervised QNN competitor on the labelled dataset and
/// returns the trained model (paper protocol: the QNN gets the labels
/// Quorum never sees).
pub fn run_qnn(data: &Dataset, seed: u64) -> TrainedQnn {
    train(
        data,
        &TrainConfig {
            seed,
            ..TrainConfig::default()
        },
    )
}

/// The four Fig. 8 metrics for a prediction vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsRow {
    /// Recall.
    pub recall: f64,
    /// Precision.
    pub precision: f64,
    /// F1 score.
    pub f1: f64,
    /// Accuracy.
    pub accuracy: f64,
}

impl MetricsRow {
    /// Extracts the row from a confusion matrix.
    pub fn from_confusion(cm: &ConfusionMatrix) -> Self {
        MetricsRow {
            recall: cm.recall(),
            precision: cm.precision(),
            f1: cm.f1(),
            accuracy: cm.accuracy(),
        }
    }
}

/// Renders a fixed-width text table (the harness output format).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let render = |cells: Vec<String>| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        render(headers.iter().map(|h| (*h).to_string()).collect())
    );
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        println!("{}", render(row.clone()));
    }
}

/// Parses `--flag value` pairs from the command line with defaults.
#[derive(Debug, Clone)]
pub struct CliArgs {
    /// Ensemble groups for noiseless runs.
    pub groups: usize,
    /// Ensemble groups for noisy runs.
    pub noisy_groups: usize,
    /// Master seed.
    pub seed: u64,
}

impl CliArgs {
    /// Parses `std::env::args`, falling back to the provided defaults.
    ///
    /// # Panics
    ///
    /// Panics on malformed numeric arguments (experiment harness).
    pub fn parse(default_groups: usize, default_noisy: usize) -> Self {
        let mut out = CliArgs {
            groups: default_groups,
            noisy_groups: default_noisy,
            seed: 42,
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i + 1 < args.len() {
            match args[i].as_str() {
                "--groups" => out.groups = args[i + 1].parse().expect("--groups takes a number"),
                "--noisy-groups" => {
                    out.noisy_groups = args[i + 1].parse().expect("--noisy-groups takes a number")
                }
                "--seed" => out.seed = args[i + 1].parse().expect("--seed takes a number"),
                other => panic!("unknown argument {other}"),
            }
            i += 2;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table1() {
        let specs = table1_specs();
        assert_eq!(specs.len(), 4);
        for spec in &specs {
            let ds = spec.load(1);
            assert_eq!(ds.num_samples(), spec.samples);
            assert_eq!(ds.anomaly_count(), Some(spec.anomalies));
        }
    }

    #[test]
    fn quorum_config_carries_spec_parameters() {
        let spec = &table1_specs()[2]; // letter, p = 0.95
        let config = quorum_config(spec, 10, 3);
        assert_eq!(config.bucket_probability, 0.95);
        assert!((config.anomaly_rate_estimate.unwrap() - 33.0 / 533.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_row_extraction() {
        let cm = ConfusionMatrix::from_counts(5, 5, 85, 5);
        let row = MetricsRow::from_confusion(&cm);
        assert!((row.precision - 0.5).abs() < 1e-12);
        assert!((row.recall - 0.5).abs() < 1e-12);
        assert!((row.accuracy - 0.9).abs() < 1e-12);
    }

    #[test]
    fn mini_quorum_run_via_harness() {
        let spec = &table1_specs()[3];
        let ds = spec.load(9);
        let report = run_quorum(&ds, spec, 2, 7, ExecutionMode::Exact);
        assert_eq!(report.len(), ds.num_samples());
    }
}
