//! Ablation: how results stabilise as the ensemble grows (the paper's §V
//! remark that "benefits diminish as they increase past a certain point").
//!
//! Prints, per dataset, F1 / ROC-AUC / rank-stability at increasing
//! ensemble sizes from a single incremental run.
//!
//! ```text
//! cargo run -p quorum-bench --release --bin ablation_ensemble_convergence [--groups N] [--seed S]
//! ```

use qmetrics::roc_auc;
use qmetrics::threshold::flag_top_n;
use quorum_bench::{print_table, quorum_config, table1_specs, CliArgs};
use quorum_core::analysis::convergence_trace;

fn main() {
    let args = CliArgs::parse(128, 0);
    let checkpoints: Vec<usize> = [1usize, 2, 4, 8, 16, 32, 64, 128]
        .into_iter()
        .filter(|&c| c <= args.groups)
        .collect();
    let mut rows = Vec::new();

    for spec in table1_specs() {
        let ds = spec.load(args.seed);
        let labels = ds.labels().expect("labelled");
        let config = quorum_config(&spec, args.groups, args.seed);
        let trace = convergence_trace(&config, &ds, &checkpoints).expect("trace");
        let stability = trace.rank_stability();
        for (k, &groups) in trace.checkpoints().iter().enumerate() {
            let scores = trace.scores_at(k);
            let flags = flag_top_n(scores, spec.anomalies);
            let cm = qmetrics::ConfusionMatrix::from_predictions(labels, &flags);
            rows.push(vec![
                spec.display.to_string(),
                groups.to_string(),
                format!("{:.3}", cm.f1()),
                format!("{:.3}", roc_auc(scores, labels)),
                format!("{:.3}", stability[k]),
            ]);
        }
    }

    print_table(
        &format!("Ablation: ensemble-size convergence (seed {})", args.seed),
        &[
            "Dataset",
            "Groups",
            "F1",
            "ROC-AUC",
            "Rank-stability vs final",
        ],
        &rows,
    );
    println!("\n(Rank stability = Spearman correlation against the final ensemble's");
    println!(" ranking; the paper's 1,000-member ensembles sit deep in the plateau.)");
}
