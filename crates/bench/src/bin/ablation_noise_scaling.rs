//! Ablation: noise-strength scaling. Fig. 9 shows Quorum barely degrades
//! at Brisbane's error rates; this sweep scales every error source by
//! 0×, 1×, 4× and 16× to find where detection actually breaks.
//!
//! Runs on a 120-sample slice of the breast-cancer data (density-matrix
//! simulation is the expensive path).
//!
//! ```text
//! cargo run -p quorum-bench --release --bin ablation_noise_scaling [--noisy-groups N] [--seed S]
//! ```

use qdata::Dataset;
use qmetrics::roc_auc;
use qsim::NoiseModel;
use quorum_bench::{print_table, quorum_config, table1_specs, CliArgs};
use quorum_core::{ExecutionMode, QuorumDetector};

fn main() {
    let args = CliArgs::parse(0, 6);
    let spec = table1_specs()
        .into_iter()
        .find(|s| s.name == "breast-cancer")
        .expect("registered");
    let full = spec.load(args.seed);
    // Slice: keep all anomalies plus the first normals up to 120 samples.
    let labels_full = full.labels().expect("labelled");
    let mut rows_subset = Vec::new();
    let mut labels = Vec::new();
    for (i, row) in full.rows().iter().enumerate() {
        if labels_full[i] || rows_subset.len() < 110 + labels.iter().filter(|&&l| l).count() {
            rows_subset.push(row.clone());
            labels.push(labels_full[i]);
        }
    }
    let ds = Dataset::from_rows("bc-slice", rows_subset, Some(labels.clone())).unwrap();
    println!("{ds}");

    let mut table = Vec::new();
    for scale in [0.0f64, 1.0, 4.0, 16.0] {
        let start = std::time::Instant::now();
        let mode = if scale == 0.0 {
            ExecutionMode::Exact
        } else {
            ExecutionMode::Noisy {
                noise: NoiseModel::brisbane().scaled(scale),
                shots: None,
            }
        };
        let config = quorum_config(&spec, args.noisy_groups, args.seed).with_execution(mode);
        let report = QuorumDetector::new(config)
            .expect("valid")
            .score(&ds)
            .expect("scores");
        let auc = roc_auc(report.scores(), &labels);
        let n_anom = labels.iter().filter(|&&l| l).count();
        let cm = report.evaluate_top_n(&labels, n_anom);
        table.push(vec![
            if scale == 0.0 {
                "noiseless".to_string()
            } else {
                format!("{scale}x Brisbane")
            },
            format!("{:.3}", cm.f1()),
            format!("{:.3}", auc),
            format!("{:.0}s", start.elapsed().as_secs_f64()),
        ]);
    }

    print_table(
        &format!(
            "Ablation: noise scaling on a breast-cancer slice ({} groups, seed {})",
            args.noisy_groups, args.seed
        ),
        &["Noise", "F1", "ROC-AUC", "Wall"],
        &table,
    );
    println!("\n(Quorum's per-bucket z-scores difference out noise that affects all");
    println!(" samples equally; only strongly amplified noise erodes the ranking.)");
}
