//! Regenerates **Table I**: the evaluation datasets with their anomaly
//! statistics and bucket-probability targets, plus the bucket sizes the
//! targets imply.
//!
//! ```text
//! cargo run -p quorum-bench --release --bin table1_datasets
//! ```

use quorum_bench::{print_table, table1_specs, CliArgs};
use quorum_core::bucket::BucketPlan;

fn main() {
    let args = CliArgs::parse(0, 0);
    let rows: Vec<Vec<String>> = table1_specs()
        .iter()
        .map(|spec| {
            let ds = spec.load(args.seed);
            let plan = BucketPlan::from_target(
                ds.num_samples(),
                spec.anomaly_rate(),
                spec.bucket_probability,
            );
            vec![
                spec.display.to_string(),
                ds.num_samples().to_string(),
                ds.anomaly_count().expect("labelled").to_string(),
                ds.num_features().to_string(),
                format!("{:.2}", spec.bucket_probability),
                plan.bucket_size().to_string(),
                plan.num_buckets().to_string(),
                format!("{:.3}", plan.actual_probability(spec.anomaly_rate())),
            ]
        })
        .collect();
    print_table(
        "Table I: Datasets used for Quorum's evaluation",
        &[
            "Dataset",
            "Samples",
            "Anomalies",
            "Features",
            "Pr[anomaly in bucket]",
            "Bucket size",
            "Buckets",
            "Achieved Pr",
        ],
        &rows,
    );
    println!("\n(Bucket size = ceil(ln(1-p)/ln(1-r)); see DESIGN.md §3.4.)");
}
