//! Regenerates **Fig. 10**: the breast-cancer score-separation plot — every
//! sample's summed absolute standard deviation, sorted ascending, with
//! anomalous samples marked.
//!
//! ```text
//! cargo run -p quorum-bench --release --bin fig10_separation [--groups N] [--seed S]
//! ```
//!
//! Paper shape to check: normal samples form a low, slowly rising curve;
//! the labelled anomalies cluster at the extreme right (highest scores).

use quorum_bench::{run_quorum, table1_specs, CliArgs};
use quorum_core::ExecutionMode;

fn main() {
    let args = CliArgs::parse(200, 0);
    let spec = table1_specs()
        .into_iter()
        .find(|s| s.name == "breast-cancer")
        .expect("registered");
    let ds = spec.load(args.seed);
    let labels = ds.labels().expect("labelled");

    let report = run_quorum(&ds, &spec, args.groups, args.seed, ExecutionMode::Exact);
    let sorted = report.sorted_with_labels(labels);

    println!(
        "== Fig. 10: sum-absolute-std-deviation per sample, sorted ({} groups, seed {}) ==",
        args.groups, args.seed
    );
    println!("rank  score      label");
    let n = sorted.len();
    // Print a readable subsample of normals plus every anomaly.
    for (rank, (score, is_anomaly)) in sorted.iter().enumerate() {
        let stride = (n / 40).max(1);
        if *is_anomaly || rank % stride == 0 || rank + 10 >= n {
            println!(
                "{rank:>4}  {score:>9.2}  {}",
                if *is_anomaly { "ANOMALY" } else { "normal" }
            );
        }
    }

    // Summary statistics the figure conveys visually.
    let anomaly_ranks: Vec<usize> = sorted
        .iter()
        .enumerate()
        .filter(|(_, (_, a))| *a)
        .map(|(r, _)| r)
        .collect();
    let worst_rank = anomaly_ranks.iter().copied().min().unwrap_or(0);
    println!(
        "\nAll {} anomalies sit in sorted ranks {:?} of {} samples.",
        anomaly_ranks.len(),
        anomaly_ranks,
        n
    );
    println!(
        "Lowest anomaly rank = {} → every anomaly is inside the top {:.1}% of scores.",
        worst_rank,
        100.0 * (n - worst_rank) as f64 / n as f64
    );
    let max_normal = sorted
        .iter()
        .filter(|(_, a)| !*a)
        .map(|(s, _)| *s)
        .fold(f64::MIN, f64::max);
    let min_anomaly = sorted
        .iter()
        .filter(|(_, a)| *a)
        .map(|(s, _)| *s)
        .fold(f64::MAX, f64::min);
    println!("Max normal score {max_normal:.2}; min anomaly score {min_anomaly:.2}.");
}
