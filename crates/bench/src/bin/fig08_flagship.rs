//! Regenerates **Fig. 8**: recall, precision, F1 and accuracy for the
//! supervised QNN competitor versus Quorum across all four datasets, plus
//! the paper's headline "average F1 gain" number.
//!
//! ```text
//! cargo run -p quorum-bench --release --bin fig08_flagship [--groups N] [--seed S]
//! ```
//!
//! Paper shapes to check: Quorum wins F1 on every dataset (23% average in
//! the paper); the QNN is conservative (high precision, poor recall) and
//! detects nothing on the letter dataset.

use qmetrics::confusion::ConfusionMatrix;
use quorum_bench::{print_table, run_qnn, run_quorum, table1_specs, CliArgs, MetricsRow};
use quorum_core::ExecutionMode;

fn main() {
    let args = CliArgs::parse(150, 0);
    let mut rows = Vec::new();
    let mut f1_quorum_sum = 0.0;
    let mut f1_qnn_sum = 0.0;

    for spec in table1_specs() {
        let ds = spec.load(args.seed);
        let labels = ds.labels().expect("synthetic data is labelled");

        // Quorum: fully unsupervised; flag top-k with k = anomaly count.
        let start = std::time::Instant::now();
        let report = run_quorum(&ds, &spec, args.groups, args.seed, ExecutionMode::Exact);
        let quorum_time = start.elapsed();
        let quorum_cm = report.evaluate_at_anomaly_count(labels);
        let quorum = MetricsRow::from_confusion(&quorum_cm);

        // QNN: supervised training on the labelled dataset.
        let start = std::time::Instant::now();
        let trained = run_qnn(&ds, args.seed);
        let qnn_time = start.elapsed();
        let preds = trained.predict_dataset(&ds);
        let qnn_cm = ConfusionMatrix::from_predictions(labels, &preds);
        let qnn = MetricsRow::from_confusion(&qnn_cm);

        f1_quorum_sum += quorum.f1;
        f1_qnn_sum += qnn.f1;

        for (method, m, t) in [("QNN", qnn, qnn_time), ("Quorum", quorum, quorum_time)] {
            rows.push(vec![
                spec.display.to_string(),
                method.to_string(),
                format!("{:.3}", m.recall),
                format!("{:.3}", m.precision),
                format!("{:.3}", m.f1),
                format!("{:.3}", m.accuracy),
                format!("{:.1}s", t.as_secs_f64()),
            ]);
        }
    }

    print_table(
        &format!(
            "Fig. 8: QNN vs Quorum across datasets ({} ensemble groups, seed {})",
            args.groups, args.seed
        ),
        &[
            "Dataset",
            "Method",
            "Recall",
            "Precision",
            "F1",
            "Accuracy",
            "Wall",
        ],
        &rows,
    );

    let avg_quorum = f1_quorum_sum / 4.0;
    let avg_qnn = f1_qnn_sum / 4.0;
    println!("\nAverage F1: Quorum {avg_quorum:.3} vs QNN {avg_qnn:.3}");
    if avg_qnn > 0.0 {
        println!(
            "Quorum's average F1 advantage: {:+.0}% (paper reports +23%)",
            100.0 * (avg_quorum - avg_qnn) / avg_qnn
        );
    } else {
        println!("QNN detected nothing anywhere; Quorum's advantage is unbounded.");
    }
}
