//! Ablation: normalisation strategy. The paper's §IV-A formula
//! `raw / (max · M)` compresses offset-heavy features (ambient pressure,
//! energy output) into nearly constant amplitudes; min–max rescaling
//! restores their contrast. This sweep quantifies the effect per dataset.
//!
//! ```text
//! cargo run -p quorum-bench --release --bin ablation_normalization [--groups N] [--seed S]
//! ```

use qmetrics::roc_auc;
use quorum_bench::{print_table, quorum_config, table1_specs, CliArgs};
use quorum_core::{Normalization, QuorumDetector};

fn main() {
    let args = CliArgs::parse(80, 0);
    let mut rows = Vec::new();

    for spec in table1_specs() {
        let ds = spec.load(args.seed);
        let labels = ds.labels().expect("labelled");
        for (name, strategy) in [
            ("raw/max (paper)", Normalization::RangeMax),
            ("min-max", Normalization::MinMax),
        ] {
            let config = quorum_config(&spec, args.groups, args.seed).with_normalization(strategy);
            let report = QuorumDetector::new(config)
                .expect("valid")
                .score(&ds)
                .expect("scores");
            let cm = report.evaluate_at_anomaly_count(labels);
            rows.push(vec![
                spec.display.to_string(),
                name.to_string(),
                format!("{:.3}", cm.f1()),
                format!("{:.3}", cm.recall()),
                format!("{:.3}", roc_auc(report.scores(), labels)),
            ]);
        }
    }

    print_table(
        &format!(
            "Ablation: normalisation strategy ({} groups, seed {})",
            args.groups, args.seed
        ),
        &["Dataset", "Normalisation", "F1", "Recall", "ROC-AUC"],
        &rows,
    );
    println!("\n(The paper's formula is the faithful default; min-max is this");
    println!(" reproduction's extension for offset-heavy features like the power");
    println!(" plant's ambient pressure.)");
}
