//! Regenerates **Table II**: F1 scores as the bucket-probability target
//! `p` sweeps over {0.5, 0.6, 0.75, 0.95, 0.98} for every dataset.
//!
//! ```text
//! cargo run -p quorum-bench --release --bin table2_bucket_ablation [--groups N] [--seed S]
//! ```
//!
//! Paper shapes to check: very small buckets (low `p`) degrade F1, and
//! moderate buckets often beat the largest ones — letter peaks toward
//! `p = 0.95`, breast cancer and power plant around `p = 0.75`.

use quorum_bench::{print_table, run_quorum, table1_specs, CliArgs};
use quorum_core::bucket::BucketPlan;
use quorum_core::ExecutionMode;

const P_VALUES: [f64; 5] = [0.5, 0.6, 0.75, 0.95, 0.98];

fn main() {
    let args = CliArgs::parse(60, 0);
    let mut rows = Vec::new();

    for spec in table1_specs() {
        let ds = spec.load(args.seed);
        let labels = ds.labels().expect("labelled");
        let mut row = vec![spec.display.to_string()];
        for &p in &P_VALUES {
            let mut spec_p = spec.clone();
            spec_p.bucket_probability = p;
            let report = run_quorum(&ds, &spec_p, args.groups, args.seed, ExecutionMode::Exact);
            let cm = report.evaluate_at_anomaly_count(labels);
            row.push(format!("{:.3}", cm.f1()));
        }
        // Also show the bucket size p implies, for context.
        let sizes: Vec<String> = P_VALUES
            .iter()
            .map(|&p| {
                BucketPlan::from_target(ds.num_samples(), spec.anomaly_rate(), p)
                    .bucket_size()
                    .to_string()
            })
            .collect();
        row.push(sizes.join("/"));
        rows.push(row);
    }

    print_table(
        &format!(
            "Table II: F1 scores for different bucket sizes ({} groups, seed {})",
            args.groups, args.seed
        ),
        &[
            "Dataset",
            "p=0.5",
            "p=0.6",
            "p=0.75",
            "p=0.95",
            "p=0.98",
            "bucket sizes",
        ],
        &rows,
    );
}
