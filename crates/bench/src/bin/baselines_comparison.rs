//! Extension experiment (not a paper figure): classical unsupervised
//! baselines from the paper's background section — Isolation Forest, LOF,
//! k-means distance and per-feature z-scores — on the same four datasets,
//! evaluated identically to Quorum (flag top-k, k = anomaly count).
//!
//! ```text
//! cargo run -p quorum-bench --release --bin baselines_comparison [--groups N] [--seed S]
//! ```

use classical_baselines::{
    Detector, IsolationForest, KMeansDetector, LocalOutlierFactor, ZScoreDetector,
};
use qmetrics::confusion::ConfusionMatrix;
use qmetrics::{flag_top_n, roc_auc};
use quorum_bench::{print_table, run_quorum, table1_specs, CliArgs};
use quorum_core::ExecutionMode;

fn main() {
    let args = CliArgs::parse(100, 0);
    let mut rows = Vec::new();

    for spec in table1_specs() {
        let ds = spec.load(args.seed);
        let labels = ds.labels().expect("labelled");
        let n_anom = spec.anomalies;
        let stripped = ds.strip_labels();

        let detectors: Vec<(String, Vec<f64>)> = vec![
            (
                "IsolationForest".into(),
                IsolationForest::default().score(&stripped),
            ),
            ("LOF".into(), LocalOutlierFactor::default().score(&stripped)),
            (
                "KMeans-dist".into(),
                KMeansDetector::default().score(&stripped),
            ),
            ("ZScore".into(), ZScoreDetector::default().score(&stripped)),
            (
                "Quorum".into(),
                run_quorum(&ds, &spec, args.groups, args.seed, ExecutionMode::Exact)
                    .scores()
                    .to_vec(),
            ),
        ];

        for (name, scores) in detectors {
            let flags = flag_top_n(&scores, n_anom);
            let cm = ConfusionMatrix::from_predictions(labels, &flags);
            rows.push(vec![
                spec.display.to_string(),
                name,
                format!("{:.3}", cm.recall()),
                format!("{:.3}", cm.precision()),
                format!("{:.3}", cm.f1()),
                format!("{:.3}", roc_auc(&scores, labels)),
            ]);
        }
    }

    print_table(
        &format!(
            "Extension: classical baselines vs Quorum ({} groups, seed {})",
            args.groups, args.seed
        ),
        &["Dataset", "Method", "Recall", "Precision", "F1", "ROC-AUC"],
        &rows,
    );
}
