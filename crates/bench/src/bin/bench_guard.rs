//! Bench-regression guard: compares a freshly emitted `BENCH_engines.json`
//! against the committed `BENCH_baseline.json` and fails (exit code 1)
//! when any tracked metric regresses by more than 25%. Guarding is
//! direction-aware: `*_ns_per_sample` metrics regress when they RISE,
//! `*_speedup` ratios regress when they DROP — a collapsing speedup
//! (e.g. SIMD silently falling back to scalar, or sharding sliding
//! below its single-worker baseline) now fails even when the absolute
//! wall times stay inside their own 25% band.
//!
//! Usage: `bench_guard <baseline.json> <current.json>`
//!
//! GFLOP/s and samples/sec columns move with the host and remain
//! informational. Metric-set mismatches are reported as actionable
//! diffs: a guarded metric that is in the baseline but MISSING from the
//! fresh run is a hard failure (a bench column silently disappeared —
//! either restore it or delete the stale key from `BENCH_baseline.json`
//! in the same PR), while a metric that is new in the fresh run is only
//! a note reminding you to fold it into the baseline. The parser reads
//! exactly the flat `"key": value` lines `engine_comparison.rs` emits —
//! no JSON dependency needed offline.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Regressions beyond this factor fail the job: generous enough to absorb
/// normal runner jitter on the best-of-N protocol, tight enough to catch a
/// real algorithmic slip. Lower-is-better metrics fail above this ratio;
/// higher-is-better metrics fail below its reciprocal.
const MAX_REGRESSION: f64 = 1.25;

/// Which way a guarded metric is allowed to move.
#[derive(Clone, Copy, PartialEq)]
enum Direction {
    /// `*_ns_per_sample`: regression when the value RISES.
    LowerIsBetter,
    /// `*_speedup`: regression when the value DROPS.
    HigherIsBetter,
}

/// Classifies a metric key into its guarded direction, or `None` for
/// informational columns (GFLOP/s, samples/sec, flags).
fn guarded_direction(key: &str) -> Option<Direction> {
    if key.ends_with("_ns_per_sample") {
        Some(Direction::LowerIsBetter)
    } else if key.ends_with("_speedup") {
        Some(Direction::HigherIsBetter)
    } else {
        None
    }
}

/// Extracts the flat `"key": value` metric pairs from the bench JSON's
/// `metrics` object (the exact format `emit_bench_json` writes).
fn parse_metrics(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let mut in_metrics = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with("\"metrics\"") {
            in_metrics = true;
            continue;
        }
        if !in_metrics {
            continue;
        }
        if line.starts_with('}') {
            break;
        }
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"').to_string();
        let value = value.trim().trim_end_matches(',');
        if let Ok(v) = value.parse::<f64>() {
            out.insert(key, v);
        }
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: bench_guard <baseline.json> <current.json>");
        return ExitCode::from(2);
    }
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
    };
    let baseline = parse_metrics(&read(&args[1]));
    let current = parse_metrics(&read(&args[2]));
    if baseline.is_empty() || current.is_empty() {
        eprintln!(
            "no metrics parsed (baseline: {}, current: {})",
            baseline.len(),
            current.len()
        );
        return ExitCode::from(2);
    }

    let mut regressions = Vec::new();
    let mut missing = Vec::new();
    println!(
        "{:<44} {:>14} {:>14} {:>8}",
        "metric", "baseline", "current", "ratio"
    );
    for (key, &base) in baseline.iter() {
        let Some(direction) = guarded_direction(key) else {
            continue;
        };
        let Some(&now) = current.get(key) else {
            println!(
                "{key:<44} {base:>14.3} {:>14} {:>8}  MISSING",
                "absent", "-"
            );
            missing.push(key.clone());
            continue;
        };
        let ratio = now / base;
        let regressed = match direction {
            Direction::LowerIsBetter => ratio > MAX_REGRESSION,
            Direction::HigherIsBetter => ratio < 1.0 / MAX_REGRESSION,
        };
        let flag = if regressed { "  REGRESSED" } else { "" };
        println!("{key:<44} {base:>14.3} {now:>14.3} {ratio:>8.2}{flag}");
        if regressed {
            regressions.push((key.clone(), ratio));
        }
    }
    let new_keys: Vec<&String> = current
        .keys()
        .filter(|k| guarded_direction(k).is_some() && !baseline.contains_key(*k))
        .collect();
    for key in &new_keys {
        println!("{key:<44} {:>14} {:>14} {:>8}", "-", "new", "-");
    }
    if !new_keys.is_empty() {
        println!(
            "\nnote: {} new metric(s) not yet in the baseline — fold them into \
             BENCH_baseline.json so future regressions are caught:",
            new_keys.len()
        );
        for key in &new_keys {
            println!("  + {key}: {:.3}", current[*key]);
        }
    }

    if regressions.is_empty() && missing.is_empty() {
        println!(
            "\nbench guard: all tracked ns/sample and speedup metrics within \
             {MAX_REGRESSION}x of baseline (speedups guarded against drops)"
        );
        ExitCode::SUCCESS
    } else {
        if !regressions.is_empty() {
            eprintln!(
                "\nbench guard: {} metric(s) regressed more than {:.0}% against \
                 BENCH_baseline.json:",
                regressions.len(),
                (MAX_REGRESSION - 1.0) * 100.0
            );
            for (key, ratio) in &regressions {
                eprintln!("  {key}: x{ratio:.2}");
            }
            eprintln!("(refresh the baseline intentionally if this slowdown is accepted)");
        }
        if !missing.is_empty() {
            eprintln!(
                "\nbench guard: {} baseline metric(s) missing from the fresh bench output:",
                missing.len()
            );
            for key in &missing {
                eprintln!("  - {key}");
            }
            eprintln!(
                "(a bench column disappeared — restore it in engine_comparison.rs, or if the \
                 removal is intentional, delete the stale key from BENCH_baseline.json)"
            );
        }
        ExitCode::FAILURE
    }
}
