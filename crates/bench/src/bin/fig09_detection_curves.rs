//! Regenerates **Fig. 9**: detection-rate curves (fraction of anomalies
//! found vs fraction of the dataset inspected) for every dataset, in both
//! noiseless and Brisbane-like noisy simulation.
//!
//! ```text
//! cargo run -p quorum-bench --release --bin fig09_detection_curves \
//!     [--groups N] [--noisy-groups M] [--seed S]
//! ```
//!
//! Paper shapes to check: steep initial gradients (breast cancer and power
//! plant reach ~80% detection within the top 10%), letter/pen slower but
//! clearly above the random diagonal, and noisy curves tracking their
//! noiseless counterparts closely.

use qmetrics::curve::{curve_auc, sample_curve};
use qsim::NoiseModel;
use quorum_bench::{print_table, run_quorum, table1_specs, CliArgs};
use quorum_core::ExecutionMode;

const FRACTIONS: [f64; 11] = [0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0];

fn main() {
    let args = CliArgs::parse(100, 6);
    let mut rows = Vec::new();

    for spec in table1_specs() {
        let ds = spec.load(args.seed);
        let labels = ds.labels().expect("labelled");

        for (variant, mode, groups) in [
            ("Original", ExecutionMode::Exact, args.groups),
            (
                "Noisy",
                ExecutionMode::Noisy {
                    noise: NoiseModel::brisbane(),
                    shots: None,
                },
                args.noisy_groups,
            ),
        ] {
            let start = std::time::Instant::now();
            let report = run_quorum(&ds, &spec, groups, args.seed, mode);
            let wall = start.elapsed();
            let curve = report.detection_curve(labels);
            let sampled = sample_curve(&curve, &FRACTIONS);
            let auc = curve_auc(&curve);
            let mut row = vec![format!("{} ({variant})", spec.display)];
            row.extend(
                sampled
                    .iter()
                    .skip(1) // drop the trivial 0.0 point
                    .map(|p| format!("{:.2}", p.fraction_detected)),
            );
            row.push(format!("{auc:.3}"));
            row.push(format!("{:.0}s", wall.as_secs_f64()));
            rows.push(row);
        }
    }

    let mut headers: Vec<String> = vec!["Series".to_string()];
    headers.extend(FRACTIONS.iter().skip(1).map(|f| format!("@{f:.2}")));
    headers.push("AUC".to_string());
    headers.push("Wall".to_string());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    print_table(
        &format!(
            "Fig. 9: fraction of anomalies detected vs fraction of dataset inspected \
             (noiseless {} groups, noisy {} groups, seed {})",
            args.groups, args.noisy_groups, args.seed
        ),
        &header_refs,
        &rows,
    );
    println!("\n(Columns are detection rates after inspecting the top k fraction of scores;");
    println!(" a random ranking would read ≈ the inspected fraction itself.)");
}
