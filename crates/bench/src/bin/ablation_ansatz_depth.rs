//! Ablation: ansatz depth. The paper's Fig. 5 ansatz uses two
//! RX/RZ/CX-chain layers; this sweep shows how layer count affects
//! detection quality and circuit depth.
//!
//! ```text
//! cargo run -p quorum-bench --release --bin ablation_ansatz_depth [--groups N] [--seed S]
//! ```

use qmetrics::roc_auc;
use quorum_bench::{print_table, quorum_config, table1_specs, CliArgs};
use quorum_core::QuorumDetector;

fn main() {
    let args = CliArgs::parse(60, 0);
    let mut rows = Vec::new();

    for spec in table1_specs().into_iter().take(2) {
        let ds = spec.load(args.seed);
        let labels = ds.labels().expect("labelled");
        for layers in 1..=4usize {
            let config = quorum_config(&spec, args.groups, args.seed).with_ansatz_layers(layers);
            let report = QuorumDetector::new(config)
                .expect("valid")
                .score(&ds)
                .expect("scores");
            let cm = report.evaluate_at_anomaly_count(labels);
            // Gates per encoder layer: n RX + n RZ + (n-1) CX.
            let gates_per_side = layers * (3 + 3 + 2);
            rows.push(vec![
                spec.display.to_string(),
                layers.to_string(),
                format!("{gates_per_side}"),
                format!("{:.3}", cm.f1()),
                format!("{:.3}", roc_auc(report.scores(), labels)),
            ]);
        }
    }

    print_table(
        &format!(
            "Ablation: ansatz layers ({} groups, seed {})",
            args.groups, args.seed
        ),
        &["Dataset", "Layers", "Encoder gates", "F1", "ROC-AUC"],
        &rows,
    );
    println!("\n(One layer already scrambles enough for bucket statistics; extra");
    println!(" layers mainly add depth — relevant on noisy hardware.)");
}
