//! Ablation: shot-count sensitivity. The paper executes 4,096 shots per
//! circuit and notes diminishing returns past a point; this sweep compares
//! finite-shot sampling against the exact (infinite-shot) limit.
//!
//! ```text
//! cargo run -p quorum-bench --release --bin ablation_shots [--groups N] [--seed S]
//! ```

use qmetrics::roc_auc;
use quorum_bench::{print_table, run_quorum, table1_specs, CliArgs};
use quorum_core::ExecutionMode;

const SHOT_COUNTS: [u64; 5] = [64, 256, 1024, 4096, 16384];

fn main() {
    let args = CliArgs::parse(60, 0);
    let spec = table1_specs()
        .into_iter()
        .find(|s| s.name == "breast-cancer")
        .expect("registered");
    let ds = spec.load(args.seed);
    let labels = ds.labels().expect("labelled");

    let mut rows = Vec::new();
    for shots in SHOT_COUNTS {
        let report = run_quorum(
            &ds,
            &spec,
            args.groups,
            args.seed,
            ExecutionMode::Sampled { shots },
        );
        let cm = report.evaluate_at_anomaly_count(labels);
        rows.push(vec![
            shots.to_string(),
            format!("{:.3}", cm.f1()),
            format!("{:.3}", cm.recall()),
            format!("{:.3}", roc_auc(report.scores(), labels)),
        ]);
    }
    let exact = run_quorum(&ds, &spec, args.groups, args.seed, ExecutionMode::Exact);
    let cm = exact.evaluate_at_anomaly_count(labels);
    rows.push(vec![
        "exact".to_string(),
        format!("{:.3}", cm.f1()),
        format!("{:.3}", cm.recall()),
        format!("{:.3}", roc_auc(exact.scores(), labels)),
    ]);

    print_table(
        &format!(
            "Ablation: shots per circuit on breast-cancer ({} groups, seed {})",
            args.groups, args.seed
        ),
        &["Shots", "F1", "Recall", "ROC-AUC"],
        &rows,
    );
    println!("\n(The paper uses 4,096 shots; the exact row is the infinite-shot limit.)");
}
