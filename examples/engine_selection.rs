//! Choosing a scoring engine: `Auto` (default), forced `Batched`,
//! `Analytic`, `Density`, or `Circuit` — and what each buys you.
//!
//! ```text
//! cargo run --release --example engine_selection
//! ```

use quorum::core::{EngineKind, ExecutionMode, QuorumConfig, QuorumDetector};
use quorum::data::Dataset;
use quorum::sim::NoiseModel;
use std::time::Instant;

fn main() {
    // 40 correlated readings plus two corrupted ones.
    let mut rows: Vec<Vec<f64>> = (0..40)
        .map(|i| {
            let t = i as f64 * 0.02;
            vec![
                5.0 + t,
                3.0 - t,
                4.0 + 0.5 * t,
                2.0,
                6.0 - 0.3 * t,
                3.5,
                2.8,
            ]
        })
        .collect();
    rows.push(vec![0.3, 9.4, 0.2, 9.8, 0.1, 9.9, 0.4]);
    rows.push(vec![9.7, 0.2, 9.9, 0.3, 9.6, 0.1, 9.8]);
    let data = Dataset::from_rows("engine-demo", rows, None).unwrap();

    let base = QuorumConfig::default()
        .with_ensemble_groups(20)
        .with_anomaly_rate_estimate(0.05)
        .with_seed(7);

    // The same pipeline through each engine: identical scores, very
    // different wall time.
    for kind in [
        EngineKind::Batched,
        EngineKind::Analytic,
        EngineKind::Circuit,
    ] {
        let detector = QuorumDetector::new(base.clone().with_engine(kind)).unwrap();
        let start = Instant::now();
        let report = detector.score(&data).unwrap();
        println!(
            "{kind:>10?}: top-2 = {:?}  in {:.2?}",
            &report.ranking()[..2],
            start.elapsed()
        );
    }

    // `Auto` resolves per execution mode: batched analytic when noiseless …
    println!(
        "\nAuto + Exact  resolves to: {:?}",
        base.clone().effective_engine()
    );
    // … and the analytic density engine when a noise model is attached
    // (the paper-literal circuit engine stays available as the oracle).
    let noisy = base.clone().with_execution(ExecutionMode::Noisy {
        noise: NoiseModel::brisbane(),
        shots: None,
    });
    println!("Auto + Noisy  resolves to: {:?}", noisy.effective_engine());

    // The noisy pipeline end to end, through the density engine.
    let detector = QuorumDetector::new(noisy).unwrap();
    let start = Instant::now();
    let report = detector.score(&data).unwrap();
    println!(
        "Noisy scoring (density engine): top-2 = {:?}  in {:.2?}",
        &report.ranking()[..2],
        start.elapsed()
    );

    // Forcing the analytic engine under noise is rejected up front.
    let invalid = base
        .with_engine(EngineKind::Analytic)
        .with_execution(ExecutionMode::Noisy {
            noise: NoiseModel::brisbane(),
            shots: None,
        });
    match QuorumDetector::new(invalid) {
        Err(e) => println!("Analytic + Noisy is rejected: {e}"),
        Ok(_) => unreachable!("validation must reject this combination"),
    }
}
