//! Near-term-hardware scenario: how much does IBM-Brisbane-like noise
//! degrade Quorum? (The paper's Fig. 9 answer: barely.)
//!
//! Runs the same detector twice — exact noiseless simulation vs a
//! density-matrix simulation with the paper's Brisbane noise medians —
//! on a compact dataset and compares rankings.
//!
//! ```text
//! cargo run --release --example noisy_hardware
//! ```

use quorum::core::{ExecutionMode, QuorumConfig, QuorumDetector};
use quorum::data::Dataset;
use quorum::metrics::roc_auc;
use quorum::sim::NoiseModel;

fn compact_dataset() -> Dataset {
    // 56 correlated samples + 4 planted anomalies = 60 total.
    let mut rows: Vec<Vec<f64>> = (0..56)
        .map(|i| {
            let t = i as f64 / 56.0;
            vec![
                3.0 + t,
                6.0 - 0.5 * t,
                2.0 + 0.8 * t,
                5.0 + 0.2 * t,
                4.0 - 0.3 * t,
                1.0 + t,
                2.5,
            ]
        })
        .collect();
    for k in 0..4 {
        let s = 1.0 + k as f64 * 0.1;
        rows.push(vec![9.0 * s, 0.4, 8.0 * s, 0.3, 9.5, 0.2 * s, 8.4]);
    }
    let mut labels = vec![false; 56];
    labels.extend([true; 4]);
    Dataset::from_rows("compact", rows, Some(labels)).unwrap()
}

fn main() {
    let data = compact_dataset();
    let labels = data.labels().unwrap().to_vec();
    let base = QuorumConfig::default()
        .with_ensemble_groups(12)
        .with_anomaly_rate_estimate(4.0 / 60.0)
        .with_seed(5);

    println!("Running noiseless (exact statevector) ...");
    let start = std::time::Instant::now();
    let clean = QuorumDetector::new(base.clone())
        .expect("valid")
        .score(&data)
        .expect("scores");
    println!("  done in {:.1?}", start.elapsed());

    println!("Running noisy (density matrix, IBM-Brisbane medians) ...");
    let start = std::time::Instant::now();
    let noisy = QuorumDetector::new(base.with_execution(ExecutionMode::Noisy {
        noise: NoiseModel::brisbane(),
        shots: Some(4096), // the paper's shot count
    }))
    .expect("valid")
    .score(&data)
    .expect("scores");
    println!("  done in {:.1?}", start.elapsed());

    let auc_clean = roc_auc(clean.scores(), &labels);
    let auc_noisy = roc_auc(noisy.scores(), &labels);
    println!("\nROC-AUC  noiseless: {auc_clean:.3}   Brisbane-noisy: {auc_noisy:.3}");

    let top_clean = &clean.ranking()[..4];
    let top_noisy = &noisy.ranking()[..4];
    let overlap = top_clean.iter().filter(|i| top_noisy.contains(i)).count();
    println!("Top-4 overlap between the two rankings: {overlap}/4");
    println!("Noiseless top-4: {top_clean:?}");
    println!("Noisy     top-4: {top_noisy:?}");
    println!("\nQuorum's z-scores compare samples that went through the *same* noisy");
    println!("channel, so uniform hardware noise largely cancels out (paper §VI).");
}
