//! Medical screening scenario: run the full Quorum pipeline on the
//! breast-cancer-like dataset (the paper's most separable workload) and
//! evaluate against the withheld diagnosis labels.
//!
//! ```text
//! cargo run --release --example medical_screening
//! ```

use quorum::core::{QuorumConfig, QuorumDetector};
use quorum::data::synth;
use quorum::metrics::roc_auc;

fn main() {
    // 367 tissue samples, 30 morphology features, 10 malignant (Table I).
    let data = synth::breast_cancer(42);
    println!("{data}");

    // The diagnosis labels exist for evaluation only; the detector strips
    // them internally before scoring.
    let labels = data.labels().expect("generator attaches labels").to_vec();

    let detector = QuorumDetector::new(
        QuorumConfig::default()
            .with_ensemble_groups(100)
            .with_bucket_probability(0.75) // Table I row 1
            .with_anomaly_rate_estimate(10.0 / 367.0)
            .with_seed(7),
    )
    .expect("valid configuration");

    let start = std::time::Instant::now();
    let report = detector.score(&data).expect("scoring succeeds");
    println!(
        "Scored {} samples with {} ensemble groups in {:.1?}",
        report.len(),
        report.ensemble_groups(),
        start.elapsed()
    );

    // Operating point: flag as many samples as the expected anomaly count.
    let cm = report.evaluate_at_anomaly_count(&labels);
    println!("\nAt the top-10 operating point:");
    println!("  {cm}");
    println!("  ROC-AUC = {:.3}", roc_auc(report.scores(), &labels));

    // Screening view: how much of the cohort must a clinician review to
    // catch all malignant samples?
    let curve = report.detection_curve(&labels);
    for target in [0.5, 0.8, 1.0] {
        let point = curve
            .iter()
            .find(|p| p.fraction_detected >= target - 1e-9)
            .expect("curve reaches 1.0");
        println!(
            "  reviewing the top {:>5.1}% of scores catches {:>4.0}% of malignancies",
            100.0 * point.fraction_inspected,
            100.0 * target
        );
    }
}
