//! Bucket-size tuning: the Table II ablation on a single dataset, showing
//! how the probability target `p` trades statistical robustness against
//! local sensitivity.
//!
//! ```text
//! cargo run --release --example bucket_tuning
//! ```

use quorum::core::bucket::BucketPlan;
use quorum::core::{QuorumConfig, QuorumDetector};
use quorum::data::synth;

fn main() {
    // The letter dataset: the paper's hardest (subtle anomalies), and the
    // one whose Table II row peaks at large buckets (p = 0.95).
    let data = synth::letter(42);
    println!("{data}\n");
    let labels = data.labels().expect("labelled").to_vec();
    let rate = 33.0 / 533.0;

    println!("p      bucket  buckets  F1     recall");
    println!("-----  ------  -------  -----  ------");
    for p in [0.5, 0.6, 0.75, 0.95, 0.98] {
        let plan = BucketPlan::from_target(data.num_samples(), rate, p);
        let detector = QuorumDetector::new(
            QuorumConfig::default()
                .with_ensemble_groups(40)
                .with_bucket_probability(p)
                .with_anomaly_rate_estimate(rate)
                .with_seed(13),
        )
        .expect("valid configuration");
        let report = detector.score(&data).expect("scores");
        let cm = report.evaluate_at_anomaly_count(&labels);
        println!(
            "{p:<5.2}  {:<6}  {:<7}  {:.3}  {:.3}",
            plan.bucket_size(),
            plan.num_buckets(),
            cm.f1(),
            cm.recall()
        );
    }

    println!("\nSmall buckets (low p) give noisy statistics; huge buckets average");
    println!("anomalies into the crowd. The sweet spot sits in between (paper §VI,");
    println!("Table II: letter peaks toward p = 0.95).");
}
