//! Industrial monitoring scenario: the combined-cycle power plant.
//!
//! The anomalies here are the interesting kind: every individual sensor
//! reading is within its legal range, but the *joint* reading violates the
//! plant physics (e.g. high output at high ambient temperature). This is
//! the paper's hardest dataset for everyone — and it exposes a real
//! preprocessing subtlety: the paper's `raw/max` normalisation compresses
//! offset-heavy sensors (ambient pressure ≈ 1000 mbar ± 2%) into nearly
//! constant amplitudes. This example runs Quorum with both the faithful
//! normalisation and this reproduction's min–max extension, next to a
//! per-sensor z-score baseline.
//!
//! ```text
//! cargo run --release -p quorum --example powerplant_monitoring
//! ```

use quorum::classical::{Detector, ZScoreDetector};
use quorum::core::{Normalization, QuorumConfig, QuorumDetector};
use quorum::data::synth;
use quorum::metrics::{flag_top_n, roc_auc, ConfusionMatrix};

fn main() {
    // 1,000 operating points, 5 features (AT, V, AP, RH, PE), 30 injected
    // "plausible" anomalies (Table I row 4).
    let data = synth::power_plant(42);
    println!("{data}");
    let labels = data.labels().expect("labelled").to_vec();
    let n_anomalies = labels.iter().filter(|&&l| l).count();

    let base = QuorumConfig::default()
        .with_ensemble_groups(100)
        .with_bucket_probability(0.75)
        .with_anomaly_rate_estimate(30.0 / 1000.0)
        .with_seed(42);

    let mut results: Vec<(&str, Vec<f64>)> = Vec::new();
    for (name, strategy) in [
        ("Quorum (paper raw/max)", Normalization::RangeMax),
        ("Quorum (min-max ext.) ", Normalization::MinMax),
    ] {
        let report = QuorumDetector::new(base.clone().with_normalization(strategy))
            .expect("valid configuration")
            .score(&data)
            .expect("scoring succeeds");
        results.push((name, report.scores().to_vec()));
    }
    // A marginal per-sensor baseline: checks each sensor against its own
    // distribution — exactly what these joint anomalies partially evade.
    results.push((
        "per-sensor |z|        ",
        ZScoreDetector::default().score(&data.strip_labels()),
    ));

    println!("\nFlagging the top {n_anomalies} suspicious operating points:");
    for (name, scores) in &results {
        let cm = ConfusionMatrix::from_predictions(&labels, &flag_top_n(scores, n_anomalies));
        println!(
            "  {name}: recall {:.3}  F1 {:.3}  ROC-AUC {:.3}",
            cm.recall(),
            cm.f1(),
            roc_auc(scores, &labels)
        );
    }

    // Complementarity: which anomalies does Quorum catch that the marginal
    // detector misses? (The paper's claim: "Quorum consistently identifies
    // subtle anomalies that [others] may overlook".)
    let quorum_flags = flag_top_n(&results[1].1, n_anomalies);
    let z_flags = flag_top_n(&results[2].1, n_anomalies);
    let only_quorum: Vec<usize> = (0..labels.len())
        .filter(|&i| labels[i] && quorum_flags[i] && !z_flags[i])
        .collect();
    let only_z: Vec<usize> = (0..labels.len())
        .filter(|&i| labels[i] && z_flags[i] && !quorum_flags[i])
        .collect();
    println!(
        "\nTrue anomalies found by Quorum but missed per-sensor: {}",
        only_quorum.len()
    );
    println!(
        "True anomalies found per-sensor but missed by Quorum: {}",
        only_z.len()
    );
    println!("\nTakeaways: the min-max extension improves Quorum's ranking quality");
    println!("(ROC-AUC) on this offset-heavy dataset over the paper's raw/max");
    println!("formula, and different detector families flag different anomalies —");
    println!("in production, ensemble them (see ablation_normalization for the");
    println!("full sweep).");
}
