//! Hardware handoff: export a Quorum circuit to OpenQASM 2.0, lower it to
//! the IBM native basis, and compare resource costs — the path a user
//! would take to run ensemble members on a real backend.
//!
//! ```text
//! cargo run --release -p quorum --example hardware_handoff
//! ```

use quorum::core::ansatz::AnsatzParams;
use quorum::core::circuit::build_sample_circuit;
use quorum::sim::qasm::{from_qasm, to_qasm};
use quorum::sim::simulator::{Backend, StatevectorBackend};
use quorum::sim::transpile;
use rand::SeedableRng;

fn main() {
    // One ensemble member's circuit for one sample at compression level 1.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let ansatz = AnsatzParams::random(3, 2, &mut rng);
    let sample = [0.11, 0.05, 0.09, 0.13, 0.02, 0.08, 0.10];
    let circ = build_sample_circuit(&sample, &ansatz, 1).expect("valid sample");

    println!(
        "Logical circuit: {} qubits, {} ops, depth {}",
        circ.num_qubits(),
        circ.len(),
        circ.depth()
    );

    // Lower to the IBM basis {rz, sx, x, cx} — what the device executes.
    let native = transpile::to_native(&circ);
    let count = |c: &quorum::sim::Circuit, name: &str| {
        c.count_ops()
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, k)| *k)
    };
    println!(
        "Native circuit:  {} ops, depth {} ({} cx, {} sx, {} rz)",
        native.len(),
        native.depth(),
        count(&native, "cx"),
        count(&native, "sx"),
        count(&native, "rz"),
    );

    // Export both to OpenQASM 2.0.
    let qasm = to_qasm(&circ);
    println!("\nFirst lines of the exported QASM:");
    for line in qasm.lines().take(8) {
        println!("  {line}");
    }
    println!("  ... ({} lines total)", qasm.lines().count());

    // Round-trip sanity: the re-imported circuit produces identical
    // measurement statistics.
    let reimported = from_qasm(&qasm).expect("round trip parses");
    let backend = StatevectorBackend::new();
    let p_original = backend
        .probabilities(&circ)
        .expect("simulates")
        .marginal_one(0);
    let p_roundtrip = backend
        .probabilities(&reimported)
        .expect("simulates")
        .marginal_one(0);
    println!("\nSWAP-test deviation P(1): original {p_original:.6}, after QASM round trip {p_roundtrip:.6}");
    assert!((p_original - p_roundtrip).abs() < 1e-12);
    println!("Round trip exact — ready for submission to a 7-qubit device.");
}
