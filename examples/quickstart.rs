//! Quickstart: score a small dataset with Quorum in ~20 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use quorum::core::{QuorumConfig, QuorumDetector};
use quorum::data::Dataset;

fn main() {
    // Build a toy dataset: 30 well-behaved sensor readings plus two
    // corrupted ones. No labels are given to the detector — Quorum is
    // fully unsupervised and needs zero training.
    let mut rows: Vec<Vec<f64>> = (0..30)
        .map(|i| {
            let drift = i as f64 * 0.01;
            vec![
                20.0 + drift,       // temperature
                1013.0 - drift,     // pressure
                55.0 + drift * 2.0, // humidity
                0.82,               // duty cycle
                11.9 + drift,       // supply voltage
            ]
        })
        .collect();
    rows.push(vec![20.2, 1013.0, 55.0, 0.02, 24.0]); // corrupted reading A
    rows.push(vec![95.0, 1012.7, 54.8, 0.81, 11.9]); // corrupted reading B
    let data = Dataset::from_rows("sensors", rows, None).expect("valid rows");

    // Configure: 3 data qubits => 7-qubit circuits (the paper's setup),
    // 40 random ensemble groups, an anomaly-rate prior of ~6%.
    let detector = QuorumDetector::new(
        QuorumConfig::default()
            .with_ensemble_groups(40)
            .with_anomaly_rate_estimate(0.06)
            .with_seed(2025),
    )
    .expect("valid configuration");

    let report = detector.score(&data).expect("scoring succeeds");

    println!("sample  score");
    for (i, score) in report.scores().iter().enumerate() {
        let marker = if report.ranking()[..2].contains(&i) {
            "  <-- flagged"
        } else {
            ""
        };
        println!("{i:>6}  {score:>8.2}{marker}");
    }
    println!(
        "\nTop-2 anomaly candidates: {:?} (the corrupted readings are samples 30 and 31)",
        &report.ranking()[..2]
    );
}
