//! # quorum — facade for the Quorum DAC 2025 reproduction
//!
//! Re-exports every workspace crate under one roof so examples and
//! downstream users need a single dependency:
//!
//! * [`core`] — the zero-training unsupervised quantum anomaly detector
//!   (the paper's contribution).
//! * [`serve`] — the frozen-detector serving runtime: freeze/thaw
//!   artifacts, cross-request batching and the TCP scoring server.
//! * [`sim`] — the quantum circuit simulation stack.
//! * [`data`] — datasets, preprocessing and the Table I generators.
//! * [`metrics`] — evaluation metrics.
//! * [`qnn`] — the supervised QNN competitor.
//! * [`classical`] — classical unsupervised baselines.
//!
//! See the repository README for a tour and EXPERIMENTS.md for the
//! paper-vs-measured record.

pub use classical_baselines as classical;
pub use qdata as data;
pub use qmetrics as metrics;
pub use qnn_baseline as qnn;
pub use qsim as sim;
pub use quorum_core as core;
pub use quorum_serve as serve;
